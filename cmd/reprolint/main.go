// Command reprolint runs the repository's static-analysis passes (see
// internal/lint) over the module: determinism and looporder (no map
// iteration order or ambient entropy in artifacts, directly or through
// a taint chain to an output sink), unchecked errors in internal/ and
// cmd/, and config hygiene (no restated experiment defaults).
//
// Usage:
//
//	reprolint [-pass name] [packages...]
//
// Package patterns are module-relative directories or `...` globs;
// the default is ./... from the module root. Exit status: 0 clean,
// 1 findings, 2 operational error (parse or type-check failure).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	var (
		passFilter = flag.String("pass", "", "run only this pass (one of: "+strings.Join(lint.PassNames(), ", ")+")")
		quiet      = flag.Bool("q", false, "suppress the summary line")
	)
	flag.Parse()
	if *passFilter != "" && !knownPass(*passFilter) {
		fmt.Fprintf(os.Stderr, "reprolint: unknown pass %q (want one of: %s)\n",
			*passFilter, strings.Join(lint.PassNames(), ", "))
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	n, err := run(patterns, *passFilter, *quiet)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reprolint:", err)
		os.Exit(2)
	}
	if n > 0 {
		os.Exit(1)
	}
}

func run(patterns []string, passFilter string, quiet bool) (int, error) {
	root, err := moduleRoot()
	if err != nil {
		return 0, err
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		return 0, err
	}
	dirs, err := loader.PackageDirs(patterns)
	if err != nil {
		return 0, err
	}
	findings := 0
	packages := 0
	for _, dir := range dirs {
		pkg, err := loader.Load(dir)
		if err != nil {
			return 0, err
		}
		packages++
		for _, f := range pkg.Findings() {
			if passFilter != "" && f.Pass != passFilter {
				continue
			}
			rel, err := filepath.Rel(root, f.Pos.Filename)
			if err != nil {
				rel = f.Pos.Filename
			}
			fmt.Printf("%s:%d:%d: %s: %s\n", rel, f.Pos.Line, f.Pos.Column, f.Pass, f.Msg)
			findings++
		}
	}
	if !quiet {
		fmt.Fprintf(os.Stderr, "reprolint: %d finding(s) in %d package(s)\n", findings, packages)
	}
	return findings, nil
}

func knownPass(name string) bool {
	for _, p := range lint.PassNames() {
		if p == name {
			return true
		}
	}
	return false
}

// moduleRoot walks up from the working directory to the enclosing
// go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}

package main

import (
	"flag"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files")

// captureStdout runs fn with os.Stdout redirected into a pipe and
// returns everything it printed. The CLIs print straight to stdout, so
// golden tests hook the file descriptor rather than threading a writer
// through every print site.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		out, _ := io.ReadAll(r)
		done <- string(out)
	}()
	ferr := fn()
	os.Stdout = old
	if cerr := w.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	out := <-done
	if ferr != nil {
		t.Fatalf("run failed: %v\noutput so far:\n%s", ferr, out)
	}
	return out
}

// checkGolden compares got against the committed golden file,
// rewriting it under -update.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s (regenerate with -update if intended)\n--- want ---\n%s\n--- got ---\n%s",
			path, want, got)
	}
}

// TestGoldenProgram locks down the full wsanalyze report for the
// fixture program: trace header, conflict graph summary, working-set
// statistics, and top sets.
func TestGoldenProgram(t *testing.T) {
	out := captureStdout(t, func() error {
		return run(runOpts{input: "ref", scale: 1.0, programFile: "testdata/interleave.s", threshold: 40, shards: 1, definition: "cliques", top: 3}, nil)
	})
	checkGolden(t, "program.golden", out)
}

// TestGoldenProgramSharded proves the user-facing determinism claim of
// the -shards flag: several shard counts must reproduce the serial
// golden byte for byte.
func TestGoldenProgramSharded(t *testing.T) {
	for _, shards := range []int{2, 3, 7} {
		out := captureStdout(t, func() error {
			return run(runOpts{input: "ref", scale: 1.0, programFile: "testdata/interleave.s", threshold: 40, shards: shards, definition: "cliques", top: 3}, nil)
		})
		checkGolden(t, "program.golden", out)
	}
}

// TestGoldenProgramCheck covers the -check path: the verifier line must
// appear before the report, and verification must pass on a healthy
// artifact.
func TestGoldenProgramCheck(t *testing.T) {
	out := captureStdout(t, func() error {
		return run(runOpts{input: "ref", scale: 1.0, programFile: "testdata/interleave.s", threshold: 40, shards: 2, definition: "cliques", top: 3, check: true}, nil)
	})
	checkGolden(t, "program_check.golden", out)
}

// TestGoldenProgramPartition covers the alternative working-set
// definition (-definition partition).
func TestGoldenProgramPartition(t *testing.T) {
	out := captureStdout(t, func() error {
		return run(runOpts{input: "ref", scale: 1.0, programFile: "testdata/interleave.s", threshold: 40, shards: 1, definition: "partition", top: 3}, nil)
	})
	checkGolden(t, "program_partition.golden", out)
}

// TestGoldenBench locks down the built-in-benchmark path at a small
// scale, shards forced serial and sharded in turn.
func TestGoldenBench(t *testing.T) {
	for _, shards := range []int{1, 3} {
		out := captureStdout(t, func() error {
			return run(runOpts{bench: "li", input: "ref", scale: 0.05, threshold: 100, shards: shards, definition: "cliques", top: 3}, nil)
		})
		checkGolden(t, "bench_li.golden", out)
	}
}

// TestGoldenProgramMetrics locks down the -metrics dump appended to the
// report. The registry gets a frozen clock and a zero memory source so
// the timing and allocation series are deterministic; the event and
// pair-increment counters are exact properties of the fixture program.
// The run is pinned serial (shards=1): operational series like shard
// batch counts and the queue high-water gauge legitimately depend on
// shard count and goroutine scheduling, while the serial path is
// structurally deterministic. Sharded-run counter exactness is covered
// by the harness observability tests instead.
func TestGoldenProgramMetrics(t *testing.T) {
	reg := obs.NewRegistry(
		obs.WithClock(obs.NewFakeClock(time.Unix(0, 0), 0)),
		obs.WithMemSource(func() uint64 { return 0 }),
	)
	out := captureStdout(t, func() error {
		return run(runOpts{input: "ref", scale: 1.0, programFile: "testdata/interleave.s", threshold: 40, shards: 1, definition: "cliques", top: 3}, reg)
	})
	checkGolden(t, "program_metrics.golden", out)
}

// TestGoldenStaticProgram locks down the -static report for the fixture
// program: compile-time header, CFG/loop summary, static estimate line,
// and the working-set report over the static conflict graph. Threshold
// 0 selects the default, which the static weight model targets.
func TestGoldenStaticProgram(t *testing.T) {
	out := captureStdout(t, func() error {
		return run(runOpts{input: "ref", scale: 1.0, programFile: "testdata/interleave.s", shards: 1, definition: "cliques", top: 3, static: true}, nil)
	})
	checkGolden(t, "program_static.golden", out)
}

// TestGoldenStaticBench covers -static -bench with -check: the built li
// program analyzed at compile time, with the verifier line in place.
func TestGoldenStaticBench(t *testing.T) {
	out := captureStdout(t, func() error {
		return run(runOpts{bench: "li", input: "ref", scale: 0.05, shards: 1, definition: "cliques", top: 3, check: true, static: true}, nil)
	})
	checkGolden(t, "bench_li_static.golden", out)
}

// TestStaticRejectsTrace: a recorded trace has no program structure to
// analyze statically.
func TestStaticRejectsTrace(t *testing.T) {
	err := run(runOpts{input: "ref", scale: 1.0, traceFile: "some.bwt", shards: 1, definition: "cliques", top: 3, static: true}, nil)
	if err == nil {
		t.Fatal("-static -trace unexpectedly succeeded")
	}
}

// TestGoldenProgramCharact locks down the -charact extension of the
// report: the predictability summary line and the per-branch entropy
// table appended after the working-set sections. The collector rides
// the same replayed stream as the profiler, so the rest of the report
// is byte-identical to program.golden.
func TestGoldenProgramCharact(t *testing.T) {
	out := captureStdout(t, func() error {
		return run(runOpts{input: "ref", scale: 1.0, programFile: "testdata/interleave.s", threshold: 40, shards: 1, definition: "cliques", top: 3, charact: true}, nil)
	})
	checkGolden(t, "program_charact.golden", out)
}

// TestStaticRejectsCharact: characterization needs an executed branch
// stream, which the compile-time path never produces.
func TestStaticRejectsCharact(t *testing.T) {
	err := run(runOpts{input: "ref", scale: 1.0, programFile: "testdata/interleave.s", shards: 1, definition: "cliques", top: 3, static: true, charact: true}, nil)
	if err == nil {
		t.Fatal("-static -charact unexpectedly succeeded")
	}
}

// TestCorruptFailsCheck is the negative control: a seeded corruption
// must make -check exit with an error.
func TestCorruptFailsCheck(t *testing.T) {
	for _, target := range []string{"graph", "sets"} {
		old := os.Stdout
		devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
		if err != nil {
			t.Fatal(err)
		}
		os.Stdout = devnull
		err = run(runOpts{input: "ref", scale: 1.0, programFile: "testdata/interleave.s", threshold: 40, shards: 1, definition: "cliques", top: 3, check: true, corrupt: target}, nil)
		os.Stdout = old
		if cerr := devnull.Close(); cerr != nil {
			t.Fatal(cerr)
		}
		if err == nil {
			t.Errorf("-corrupt %s: check unexpectedly passed", target)
		}
	}
}

// TestGoldenProgramProgcheck covers the -progcheck gate on the dynamic
// path: verifier findings and the ok line precede the report, and the
// clean fixture passes the gate.
func TestGoldenProgramProgcheck(t *testing.T) {
	out := captureStdout(t, func() error {
		return run(runOpts{input: "ref", scale: 1.0, programFile: "testdata/interleave.s", threshold: 40, shards: 1, definition: "cliques", top: 3, progCheck: true}, nil)
	})
	checkGolden(t, "program_progcheck.golden", out)
}

// TestGoldenStaticProgcheck covers -static -progcheck: the verifier's
// proven facts feed the compile-time estimate (pruning resolved and
// dead branches from the conflict graph when any are proven).
func TestGoldenStaticProgcheck(t *testing.T) {
	out := captureStdout(t, func() error {
		return run(runOpts{input: "ref", scale: 1.0, programFile: "testdata/interleave.s", shards: 1, definition: "cliques", top: 3, static: true, progCheck: true}, nil)
	})
	checkGolden(t, "program_static_progcheck.golden", out)
}

// TestProgcheckRejectsTrace: a recorded trace has no program to verify.
func TestProgcheckRejectsTrace(t *testing.T) {
	err := run(runOpts{input: "ref", scale: 1.0, traceFile: "some.bwt", shards: 1, definition: "cliques", top: 3, progCheck: true}, nil)
	if err == nil {
		t.Fatal("-progcheck -trace unexpectedly succeeded")
	}
}

; Golden-test fixture: a loop whose body holds several data-dependent
; conditional branches. Every iteration executes all of them, so each
; pair interleaves once per iteration and the conflict graph at a
; threshold below the trip count is a dense working set -- small enough
; to eyeball, rich enough to exercise graph, cliques, and allocation.
.name interleave
.mem 64
	addi r1, zero, 200      ; trip count
loop:
	rand r2
	shri r2, r2, 58         ; r2 in [0, 63]
	andi r3, r2, 1
	beq r3, zero, skip1     ; branch A: bit 0
	addi r4, r4, 1
skip1:
	andi r3, r2, 2
	beq r3, zero, skip2     ; branch B: bit 1
	addi r5, r5, 1
skip2:
	andi r3, r2, 4
	beq r3, zero, skip3     ; branch C: bit 2
	addi r6, r6, 1
skip3:
	slti r3, r2, 32
	bne r3, zero, skip4     ; branch D: magnitude
	addi r7, r7, 1
skip4:
	addi r1, r1, -1
	bne r1, zero, loop      ; branch E: loop back-edge
	halt

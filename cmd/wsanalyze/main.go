// Command wsanalyze runs branch working set analysis (paper Section 4)
// on a built-in benchmark or a recorded trace file.
//
// Usage:
//
//	wsanalyze -bench gcc [-input ref] [-scale f] [-threshold n]
//	          [-window n] [-shards n] [-definition cliques|partition]
//	          [-top n] [-charact] [-cpuprofile f] [-memprofile f]
//	wsanalyze -trace file.bwt [-threshold n] ...
//	wsanalyze -program file.s [-input ref] ...
//	wsanalyze -static -bench gcc ...
//
// It prints the working-set summary (the benchmark's Table 2 row) and
// the largest sets, and can dump the recorded trace with -save.
// -charact appends the predictability characterization: the stream's
// mean direction entropy before and after history conditioning, and a
// per-branch bias/entropy line for the -top hottest branches.
//
// With -static the program is never executed: working sets come from
// the compile-time conflict estimate (package staticws) built on the
// program's CFG and loop nest, and the same analysis, checks, and
// report run on that estimate.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"

	"repro/internal/analysis"
	"repro/internal/charact"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/profile"
	"repro/internal/progcheck"
	"repro/internal/program"
	"repro/internal/staticws"
	"repro/internal/trace"
	"repro/internal/vm"
	"repro/internal/workload"
)

func main() {
	var (
		bench       = flag.String("bench", "", "built-in benchmark to run (see -list)")
		input       = flag.String("input", "ref", "input set: ref, a, or b")
		scale       = flag.Float64("scale", 1.0, "workload scale factor")
		traceFile   = flag.String("trace", "", "analyze a recorded trace file instead of running a benchmark")
		programFile = flag.String("program", "", "run and analyze an assembly program file instead of a built-in benchmark")
		save        = flag.String("save", "", "save the recorded trace to this file")
		threshold   = flag.Uint64("threshold", core.DefaultThreshold, "conflict edge pruning threshold")
		window      = flag.Int("window", 0, "interleave scan window (0 = exact/unbounded)")
		shards      = flag.Int("shards", 0, "pair-count shards and clique-mining workers (0 = GOMAXPROCS, 1 = serial); output is identical for any value")
		definition  = flag.String("definition", "cliques", "working-set definition: cliques or partition")
		top         = flag.Int("top", 5, "print the N largest working sets")
		coverage    = flag.Float64("coverage", 0, "frequency-filter coverage (0 = the spec's default)")
		list        = flag.Bool("list", false, "list built-in benchmarks and exit")
		check       = flag.Bool("check", false, "verify artifact invariants (conflict graph, working sets); non-zero exit on violation")
		corrupt     = flag.String("corrupt", "", "testing aid: seed a corruption before the checks (graph or sets); implies -check")
		charFlag    = flag.Bool("charact", false, "append the per-branch predictability characterization (bias, entropy, history-conditioned entropy) for the -top branches by execution count")
		metrics     = flag.Bool("metrics", false, "instrument the run and append the metrics registry (text encoding) to the report")
		static      = flag.Bool("static", false, "analyze the program at compile time (CFG/loop-nest estimate) instead of executing it")
		progCheck   = flag.Bool("progcheck", false, "verify the program with the static verifier before running; error findings reject it, and with -static the proven facts prune resolved/dead branches from the conflict estimate")
		cpuprofile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile  = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	if *corrupt != "" {
		*check = true
	}

	if *list {
		for _, s := range workload.Specs() {
			fmt.Printf("%-10s %s (%d static branches)\n", s.Name, s.Description, s.StaticBranches())
		}
		return
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wsanalyze:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "wsanalyze:", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "wsanalyze:", err)
			}
		}()
	}

	var reg *obs.Registry
	if *metrics {
		reg = obs.NewRegistry()
	}
	if err := run(runOpts{
		bench: *bench, input: *input, scale: *scale,
		traceFile: *traceFile, programFile: *programFile, save: *save,
		threshold: *threshold, window: *window, shards: *shards,
		definition: *definition, top: *top, coverage: *coverage,
		check: *check, corrupt: *corrupt, static: *static,
		charact: *charFlag, progCheck: *progCheck,
	}, reg); err != nil {
		fmt.Fprintln(os.Stderr, "wsanalyze:", err)
		os.Exit(1)
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wsanalyze:", err)
			os.Exit(1)
		}
		runtime.GC() // settle allocations so the heap profile reflects retention
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "wsanalyze:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "wsanalyze:", err)
			os.Exit(1)
		}
	}
}

func inputSet(name string) (workload.InputSet, error) {
	switch name {
	case "ref":
		return workload.InputRef, nil
	case "a":
		return workload.InputA, nil
	case "b":
		return workload.InputB, nil
	}
	return workload.InputSet{}, fmt.Errorf("unknown input set %q (want ref, a, or b)", name)
}

// runOpts carries the CLI flags into run, keeping run testable without
// a 17-way positional signature.
type runOpts struct {
	bench, input                 string
	scale                        float64
	traceFile, programFile, save string
	threshold                    uint64
	window, shards               int
	definition                   string
	top                          int
	coverage                     float64
	check                        bool
	corrupt                      string
	static                       bool
	charact                      bool
	progCheck                    bool
}

func loadTrace(o runOpts, m *obs.Metrics) (*trace.Trace, float64, error) {
	coverage := o.coverage
	if o.programFile != "" {
		prog, err := buildProgram(o)
		if err != nil {
			return nil, 0, err
		}
		in, err := inputSet(o.input)
		if err != nil {
			return nil, 0, err
		}
		rec := trace.NewRecorder(prog.Name, in.Name)
		stats, err := vm.Run(prog, vm.Config{DataSeed: in.Seed, Sink: rec, Metrics: m.VM()})
		if err != nil {
			return nil, 0, err
		}
		if coverage == 0 {
			coverage = 1.0
		}
		return rec.Finish(stats.Instructions), coverage, nil
	}
	if o.traceFile != "" {
		f, err := os.Open(o.traceFile)
		if err != nil {
			return nil, 0, err
		}
		defer f.Close()
		tr, err := trace.Read(f)
		if err != nil {
			return nil, 0, err
		}
		if coverage == 0 {
			coverage = 1.0
		}
		return tr, coverage, nil
	}
	if o.bench == "" {
		return nil, 0, fmt.Errorf("need -bench, -trace, or -program (try -list)")
	}
	spec, err := workload.ByName(o.bench)
	if err != nil {
		return nil, 0, err
	}
	in, err := inputSet(o.input)
	if err != nil {
		return nil, 0, err
	}
	tr, _, err := spec.Run(workload.RunConfig{Input: in, Scale: o.scale, Metrics: m.VM()})
	if err != nil {
		return nil, 0, err
	}
	if o.save != "" {
		f, err := os.Create(o.save)
		if err != nil {
			return nil, 0, err
		}
		if err := trace.Write(f, tr); err != nil {
			_ = f.Close() // the Write failure is the error to report
			return nil, 0, err
		}
		if err := f.Close(); err != nil {
			return nil, 0, err
		}
		fmt.Printf("trace saved to %s (%d events)\n", o.save, len(tr.Events))
	}
	if coverage == 0 {
		coverage = spec.AnalyzeCoverage
	}
	return tr, coverage, nil
}

// buildProgram loads the program under analysis: a parsed assembly file
// with -program, or the built benchmark program.
func buildProgram(o runOpts) (*program.Program, error) {
	if o.programFile != "" {
		f, err := os.Open(o.programFile)
		if err != nil {
			return nil, err
		}
		prog, err := program.Parse(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		return prog, err
	}
	if o.bench == "" {
		return nil, fmt.Errorf("need -bench or -program (try -list)")
	}
	spec, err := workload.ByName(o.bench)
	if err != nil {
		return nil, err
	}
	in, err := inputSet(o.input)
	if err != nil {
		return nil, err
	}
	return spec.Build(in, o.scale)
}

// verifyProgram runs the static verifier, printing every finding.
// Error-severity findings (provable out-of-bounds accesses) reject the
// program; the report is returned for its proven facts.
func verifyProgram(p *program.Program) (*progcheck.Report, error) {
	r := progcheck.Check(p)
	errs := 0
	for _, f := range r.Findings {
		// Only the gating error findings print here; run the progcheck
		// command for the full warn/info listing.
		if f.Severity == progcheck.SevError {
			fmt.Printf("progcheck: %s\n", f)
			errs++
		}
	}
	if errs > 0 {
		return nil, fmt.Errorf("progcheck: %d error findings; program rejected", errs)
	}
	sum := r.Summary()
	fmt.Printf("progcheck: ok (%d findings; %d branch sites: %d resolved, %d dead, %d data-dependent)\n",
		len(r.Findings), sum.Sites, sum.Resolved, sum.Dead, sum.Data)
	return r, nil
}

func run(o runOpts, reg *obs.Registry) error {
	var def core.SetDefinition
	switch o.definition {
	case "cliques":
		def = core.MaximalCliques
	case "partition":
		def = core.GreedyPartition
	default:
		return fmt.Errorf("unknown definition %q (want cliques or partition)", o.definition)
	}
	m := obs.New(reg)
	shards := o.shards
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	threshold := o.threshold
	if threshold == 0 {
		threshold = core.DefaultThreshold
	}

	// -progcheck gates every path that has a program to verify; a
	// recorded trace has none.
	var report *progcheck.Report
	if o.progCheck {
		if o.traceFile != "" {
			return fmt.Errorf("-progcheck verifies a program, not a recorded trace")
		}
		prog, err := buildProgram(o)
		if err != nil {
			return err
		}
		if report, err = verifyProgram(prog); err != nil {
			return err
		}
	}

	var prof *profile.Profile
	var col *charact.Collector
	if o.static {
		if o.traceFile != "" {
			return fmt.Errorf("-static analyzes a program, not a recorded trace")
		}
		if o.charact {
			return fmt.Errorf("-charact needs an executed branch stream; drop -static")
		}
		prog, err := buildProgram(o)
		if err != nil {
			return err
		}
		// Verifier facts, when present, prune resolved and dead branches
		// from the compile-time conflict graph.
		var facts *staticws.BranchFacts
		if report != nil && report.Facts != nil {
			facts = &staticws.BranchFacts{
				ResolvedTaken: report.Facts.ResolvedDirections(),
				Dead:          report.Facts.DeadInsts(),
			}
		}
		est, err := staticws.AnalyzeWithFacts(prog, facts)
		if err != nil {
			return err
		}
		fmt.Printf("benchmark %s: compile-time analysis, no execution\n", prog.Name)
		fmt.Println(est.CFG)
		fmt.Printf("loops: %d\n", len(est.Forest.Loops))
		fmt.Println(est.Describe())
		if est.PrunedResolved+est.PrunedDead > 0 {
			fmt.Printf("progcheck pruning: %d resolved + %d dead branch sites excluded from the conflict graph\n",
				est.PrunedResolved, est.PrunedDead)
		}
		prof = est.Profile
	} else {
		tr, cov, err := loadTrace(o, m)
		if err != nil {
			return err
		}

		filter := tr.FilterByCoverage(cov)
		fmt.Printf("benchmark %s (input %s): %d dynamic branches, %d static\n",
			tr.Benchmark, tr.InputSet, filter.DynamicTotal, filter.StaticTotal)
		fmt.Printf("analyzed: %d dynamic (%.2f%%), %d static\n",
			filter.DynamicKept, 100*filter.Coverage(), filter.StaticKept)

		opts := []profile.Option{profile.WithShards(shards), profile.WithMetrics(m.Profile())}
		if o.window > 0 {
			opts = append(opts, profile.WithWindow(o.window))
			fmt.Printf("interleave scan window: %d (bounded approximation)\n", o.window)
		}
		p := profile.NewProfiler(tr.Benchmark, tr.InputSet, opts...)
		var sink vm.BranchSink = p
		if o.charact {
			// The collector rides the very stream the profiler consumes,
			// so the characterization describes the analyzed branches.
			col = charact.NewCollector()
			sink = vm.MultiSink{p, col}
		}
		filter.Kept.Replay(sink)
		p.SetInstructions(tr.Instructions)
		prof = p.Profile()
	}

	res, err := core.Analyze(prof, core.AnalysisConfig{
		Threshold:  threshold,
		Definition: def,
		Workers:    shards,
		Metrics:    m.Clique(),
	})
	if err != nil {
		return err
	}

	switch o.corrupt {
	case "":
	case "graph":
		desc, err := analysis.CorruptGraph(res.Graph, threshold)
		if err != nil {
			return err
		}
		fmt.Printf("corrupted graph: %s\n", desc)
	case "sets":
		desc, err := analysis.CorruptWorkingSets(res)
		if err != nil {
			return err
		}
		fmt.Printf("corrupted working sets: %s\n", desc)
	default:
		return fmt.Errorf("unknown -corrupt target %q (want graph or sets)", o.corrupt)
	}

	if o.check {
		if err := analysis.VerifyGraph(res.Graph, threshold); err != nil {
			return fmt.Errorf("check failed: %w", err)
		}
		if err := analysis.VerifyWorkingSets(res); err != nil {
			return fmt.Errorf("check failed: %w", err)
		}
		fmt.Println("check: conflict graph and working sets verified")
	}

	fmt.Printf("\nconflict graph: %s (threshold %d)\n", res.Graph, threshold)
	fmt.Printf("working sets (%s): %d", def, res.NumSets())
	if res.Truncated {
		fmt.Printf("+ (enumeration budget reached; counts are a lower bound)")
	}
	fmt.Println()
	fmt.Printf("average static size:  %.1f\n", res.AvgStaticSize())
	fmt.Printf("average dynamic size: %.1f\n", res.AvgDynamicSize())
	fmt.Printf("largest set:          %d\n", res.MaxSetSize())
	fmt.Printf("isolated branches:    %d\n", res.IsolatedBranches)

	top := o.top
	if top > len(res.Sets) {
		top = len(res.Sets)
	}
	if top > 0 {
		fmt.Printf("\ntop %d sets by size:\n", top)
		for i := 0; i < top; i++ {
			ws := res.Sets[i]
			fmt.Printf("  #%d: %d branches, %d executions\n", i+1, ws.Size(), ws.ExecWeight)
		}
	}

	if col != nil {
		rep := col.Report()
		sum := rep.Summary()
		fmt.Printf("\npredictability: %.3f bits mean entropy, %.3f | local%d, %.3f | global%d, %.1f%% hard\n",
			sum.Entropy, sum.LocalCond, charact.MaxHistory, sum.GlobalCond, charact.MaxHistory, 100*sum.HardFraction)
		byCount := make([]charact.BranchChar, len(rep.Branches))
		copy(byCount, rep.Branches)
		sort.Slice(byCount, func(i, j int) bool {
			if byCount[i].Count != byCount[j].Count {
				return byCount[i].Count > byCount[j].Count
			}
			return byCount[i].PC < byCount[j].PC
		})
		n := top
		if n > len(byCount) {
			n = len(byCount)
		}
		if n > 0 {
			fmt.Printf("top %d branches by execution count:\n", n)
			for i := 0; i < n; i++ {
				b := byCount[i]
				fmt.Printf("  pc=%#06x count=%-8d bias=%.3f entropy=%.3f H|local%d=%.3f H|global%d=%.3f\n",
					b.PC, b.Count, b.Bias, b.Entropy,
					charact.MaxHistory, b.LocalCond[charact.MaxHistory-1],
					charact.MaxHistory, b.GlobalCond[charact.MaxHistory-1])
			}
		}
	}

	if reg != nil {
		fmt.Printf("\nmetrics:\n")
		if err := obs.WriteText(os.Stdout, reg.Snapshot()); err != nil {
			return err
		}
	}
	return nil
}

package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// checkGolden compares got against the committed golden file,
// rewriting it under -update.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s (regenerate with -update):\ngot:\n%s\nwant:\n%s", path, got, want)
	}
}

// The corrupt fixtures: each must be rejected (non-zero exit under
// -strict) with exactly the committed findings.
var fixtures = []struct {
	file string
	// minExit is the exit code without -strict: the oob fixture carries
	// error findings, the others fail only once warns gate.
	strictOnly bool
}{
	{"oob_store.s", false},
	{"dead_block.s", true},
	{"never_taken_guard.s", true},
	{"uninit_read.s", true},
}

func TestCorruptFixtureGoldens(t *testing.T) {
	for _, fx := range fixtures {
		t.Run(fx.file, func(t *testing.T) {
			var out bytes.Buffer
			code, err := run(options{strict: true, crosscheck: true, seed: 1, maxInstructions: 1 << 20},
				[]string{filepath.Join("testdata", fx.file)}, &out)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if code != 1 {
				t.Errorf("exit = %d, want 1 (fixture must be rejected)\n%s", code, out.String())
			}
			checkGolden(t, strings.TrimSuffix(fx.file, ".s")+".golden", out.String())

			// Severity gate sanity: only the oob fixture fails without
			// -strict.
			out.Reset()
			code, err = run(options{}, []string{filepath.Join("testdata", fx.file)}, &out)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			wantDefault := 1
			if fx.strictOnly {
				wantDefault = 0
			}
			if code != wantDefault {
				t.Errorf("default-gate exit = %d, want %d\n%s", code, wantDefault, out.String())
			}
		})
	}
}

func TestBenchCleanAndJSON(t *testing.T) {
	var out bytes.Buffer
	code, err := run(options{bench: "compress", input: "ref", scale: 0.1, jsonOut: true,
		crosscheck: true, seed: 1, maxInstructions: 1 << 20}, nil, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if code != 0 {
		t.Fatalf("seed benchmark failed verification:\n%s", out.String())
	}
	var reports []report
	if err := json.Unmarshal(out.Bytes(), &reports); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out.String())
	}
	if len(reports) != 1 || reports[0].Failed {
		t.Fatalf("unexpected reports: %+v", reports)
	}
	if reports[0].Summary.Sites == 0 {
		t.Error("benchmark reports zero branch sites")
	}
}

func TestBaselineWorkflow(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "PROGCHECK.baseline")
	fixture := filepath.Join("testdata", "oob_store.s")

	// Write the baseline from the current findings, then re-run against
	// it: the same findings must now pass.
	if code, err := run(options{writeBaseline: base}, []string{fixture}, &bytes.Buffer{}); err != nil || code != 0 {
		t.Fatalf("write-baseline: code %d err %v", code, err)
	}
	var out bytes.Buffer
	code, err := run(options{baseline: base}, []string{fixture}, &out)
	if err != nil {
		t.Fatalf("run with baseline: %v", err)
	}
	if code != 0 {
		t.Errorf("baselined findings still fail (exit %d):\n%s", code, out.String())
	}
}

func TestUnknownTargets(t *testing.T) {
	if _, err := run(options{bench: "nosuch"}, nil, &bytes.Buffer{}); err == nil {
		t.Error("unknown bench accepted")
	}
	if _, err := run(options{graph: "nosuch"}, nil, &bytes.Buffer{}); err == nil {
		t.Error("unknown graph accepted")
	}
	if _, err := run(options{}, nil, &bytes.Buffer{}); err == nil {
		t.Error("empty target list accepted")
	}
}

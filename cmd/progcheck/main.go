// Command progcheck runs the static program verifier (package
// progcheck) over assembly programs, built-in seed benchmarks, or
// graph workloads, and reports findings in the reprolint style: a
// stable total order, severities error/warn/info, -json output, and a
// baseline workflow so known findings can be accepted without
// blocking a gate.
//
// Usage:
//
//	progcheck [flags] file.s...
//	progcheck -bench gcc [-input ref] [-scale f]
//	progcheck -graph bfs-uniform [-scale f]
//	progcheck -all [-scale f]
//
// Findings print as
//
//	name: inst 12 (pc 48): error: oob: store address [65536] is provably outside memory [0,4096)
//
// followed by one summary line per program with the finding counts and
// the static branch-site classification (latch / exit / guard /
// resolved / dead / data-dependent).
//
// With -crosscheck, every program whose verification produced facts is
// also executed with the facts armed as runtime assertions (package
// progcheck's differential oracle); a violation is a verifier bug and
// fails the run regardless of severity gates.
//
// Exit status: 0 clean (no error findings, or all baselined), 1 error
// findings or a crosscheck violation (-strict widens the gate to
// warn), 2 operational error.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/progcheck"
	"repro/internal/program"
	"repro/internal/vm"
	"repro/internal/workload"
)

func main() {
	var opts options
	flag.StringVar(&opts.bench, "bench", "", "verify a built-in seed benchmark (see wsanalyze -list)")
	flag.StringVar(&opts.input, "input", "ref", "input set for -bench: ref, a, or b")
	flag.StringVar(&opts.graph, "graph", "", "verify a built-in graph workload (name from GraphNames)")
	flag.BoolVar(&opts.all, "all", false, "verify every seed benchmark and graph workload")
	flag.Float64Var(&opts.scale, "scale", 0.1, "workload scale factor for -bench/-graph/-all")
	flag.BoolVar(&opts.jsonOut, "json", false, "emit reports as a JSON array instead of text")
	flag.BoolVar(&opts.strict, "strict", false, "fail on warn findings too, not only errors")
	flag.BoolVar(&opts.crosscheck, "crosscheck", false, "replay proven facts against a live run (differential oracle)")
	flag.Uint64Var(&opts.seed, "seed", 1, "data seed for -crosscheck runs")
	flag.Uint64Var(&opts.maxInstructions, "max-instructions", 2_000_000, "instruction cap for -crosscheck runs (0 = unlimited)")
	flag.StringVar(&opts.baseline, "baseline", "", "baseline file; findings whose lines match do not print or fail")
	flag.StringVar(&opts.writeBaseline, "write-baseline", "", "regenerate this baseline file from current failing findings and exit")
	flag.Parse()

	code, err := run(opts, flag.Args(), os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "progcheck:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

// options carries the CLI flags into run, keeping run testable.
type options struct {
	bench, input, graph string
	all                 bool
	scale               float64
	jsonOut             bool
	strict              bool
	crosscheck          bool
	seed                uint64
	maxInstructions     uint64
	baseline            string
	writeBaseline       string
}

// target is one program to verify.
type target struct {
	name string
	prog *program.Program
	// seed feeds -crosscheck runs; benchmarks carry their input seed.
	seed uint64
}

// report is one verified target, shaped for -json.
type report struct {
	Name     string                  `json:"name"`
	Findings []progcheck.Finding     `json:"findings"`
	Summary  progcheck.BranchSummary `json:"branch_summary"`
	Failed   bool                    `json:"failed"`
}

func run(opts options, args []string, stdout io.Writer) (int, error) {
	targets, err := resolveTargets(opts, args)
	if err != nil {
		return 2, err
	}
	if len(targets) == 0 {
		return 2, fmt.Errorf("nothing to verify: pass program files or -bench/-graph/-all")
	}
	baseline, err := loadBaseline(opts.baseline)
	if err != nil {
		return 2, err
	}

	var (
		reports   []report
		baselined []string
		exit      int
	)
	for _, t := range targets {
		r := progcheck.Check(t.prog)
		rep := report{Name: t.name, Findings: r.Findings}
		if r.Graph != nil {
			rep.Summary = r.Summary()
		}

		counts := map[progcheck.Severity]int{}
		for _, f := range r.Findings {
			counts[f.Severity]++
			line := t.name + ": " + f.String()
			fails := f.Severity == progcheck.SevError || (opts.strict && f.Severity.Fails())
			if fails {
				if baseline[line] {
					baselined = append(baselined, line)
					fails = false
				} else {
					rep.Failed = true
				}
			}
			if !opts.jsonOut && (opts.writeBaseline == "" || fails) {
				fmt.Fprintln(stdout, line)
			}
		}
		if rep.Failed {
			exit = 1
		}

		if opts.crosscheck && r.Facts != nil {
			_, err := progcheck.CrossCheck(t.prog, r.Facts, vm.Config{
				DataSeed:        t.seed,
				MaxInstructions: opts.maxInstructions,
			})
			// A runtime fault is the program's own business (an oob
			// finding predicts exactly that); only a fact violation
			// indicts the verifier.
			if err != nil && strings.Contains(err.Error(), "crosscheck:") {
				fmt.Fprintf(stdout, "%s: %v\n", t.name, err)
				rep.Failed = true
				exit = 1
			} else if !opts.jsonOut && opts.writeBaseline == "" {
				fmt.Fprintf(stdout, "%s: crosscheck ok\n", t.name)
			}
		}

		if !opts.jsonOut && opts.writeBaseline == "" {
			s := rep.Summary
			fmt.Fprintf(stdout, "%s: %d findings (%d error, %d warn, %d info); %d branch sites: %d latch, %d exit, %d guard, %d resolved, %d dead, %d data-dependent\n",
				t.name, len(r.Findings), counts[progcheck.SevError], counts[progcheck.SevWarn], counts[progcheck.SevInfo],
				s.Sites, s.Latch, s.Exit, s.Guard, s.Resolved, s.Dead, s.Data)
		}
		reports = append(reports, rep)
	}

	if opts.writeBaseline != "" {
		return exitFromWrite(opts, reports, targets)
	}
	if opts.jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			return 2, err
		}
	}
	return exit, nil
}

// exitFromWrite regenerates the baseline from current failing findings.
func exitFromWrite(opts options, reports []report, targets []target) (int, error) {
	var lines []string
	for i, rep := range reports {
		for _, f := range rep.Findings {
			if f.Severity == progcheck.SevError || (opts.strict && f.Severity.Fails()) {
				lines = append(lines, targets[i].name+": "+f.String())
			}
		}
	}
	sort.Strings(lines)
	var b strings.Builder
	for _, l := range lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	if err := os.WriteFile(opts.writeBaseline, []byte(b.String()), 0o644); err != nil {
		return 2, err
	}
	return 0, nil
}

func loadBaseline(path string) (map[string]bool, error) {
	if path == "" {
		return nil, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	defer f.Close()
	lines := make(map[string]bool)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		if l := strings.TrimSpace(sc.Text()); l != "" {
			lines[l] = true
		}
	}
	return lines, sc.Err()
}

func resolveTargets(opts options, args []string) ([]target, error) {
	var targets []target
	for _, path := range args {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		p, err := program.Parse(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		targets = append(targets, target{name: path, prog: p, seed: opts.seed})
	}
	if opts.bench != "" {
		t, err := benchTarget(opts.bench, opts.input, opts.scale)
		if err != nil {
			return nil, err
		}
		targets = append(targets, t)
	}
	if opts.graph != "" {
		g, err := workload.GraphByName(opts.graph)
		if err != nil {
			return nil, err
		}
		p, err := g.Build(opts.scale)
		if err != nil {
			return nil, err
		}
		targets = append(targets, target{name: g.Name, prog: p, seed: 1})
	}
	if opts.all {
		for _, s := range workload.Specs() {
			t, err := benchTarget(s.Name, opts.input, opts.scale)
			if err != nil {
				return nil, err
			}
			targets = append(targets, t)
		}
		for _, g := range workload.Graphs() {
			p, err := g.Build(opts.scale)
			if err != nil {
				return nil, err
			}
			targets = append(targets, target{name: g.Name, prog: p, seed: 1})
		}
	}
	return targets, nil
}

func benchTarget(name, inputName string, scale float64) (target, error) {
	s, err := workload.ByName(name)
	if err != nil {
		return target{}, err
	}
	input, err := inputByName(inputName)
	if err != nil {
		return target{}, err
	}
	p, err := s.Build(input, scale)
	if err != nil {
		return target{}, err
	}
	return target{name: s.Name + "/" + input.Name, prog: p, seed: input.Seed}, nil
}

func inputByName(name string) (workload.InputSet, error) {
	switch name {
	case "", "ref":
		return workload.InputRef, nil
	case "a":
		return workload.InputA, nil
	case "b":
		return workload.InputB, nil
	}
	return workload.InputSet{}, fmt.Errorf("unknown input set %q (want ref, a, or b)", name)
}

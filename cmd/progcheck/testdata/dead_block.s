; Corrupt fixture: a block no entry point reaches — the instructions
; after the unconditional jump are dead code a generator should never
; have emitted.
.name dead_block
.mem 64

	addi r1, zero, 4
	j end
	addi r2, zero, 7   ; dead: skipped by the jump, targeted by nothing
	st r2, 0(r1)
end:
	st r1, 0(r1)
	halt

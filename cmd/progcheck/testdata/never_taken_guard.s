; Corrupt fixture: a guard that can never fire. r1 is the constant 3,
; so the bltz is provably never taken and the guarded block is
; reachable only through a contradicted edge — the interval analysis
; proves it dead.
.name never_taken_guard
.mem 64

	addi r1, zero, 3
	bltz r1, guard     ; never taken: r1 = 3
	st r1, 4(zero)
	halt
guard:
	addi r2, zero, 1   ; dead: only the impossible edge leads here
	st r2, 8(zero)
	halt

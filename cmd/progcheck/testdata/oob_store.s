; Corrupt fixture: a store whose effective address is provably outside
; data memory. The machine allocates max(.mem, 4096) words, so the
; 65536 built by lui is out of range on every execution — the verifier
; must reject this before it ever reaches the VM.
.name oob_store
.mem 16

	addi r1, zero, 1
	st r1, -8(sp)      ; fine: below the top-of-memory stack pointer
	lui r2, 1          ; r2 = 65536, beyond the 4096-word memory
	st r1, 0(r2)       ; provably out of bounds
	addi r3, zero, -9
	ld r4, 0(r3)       ; provably negative address
	halt

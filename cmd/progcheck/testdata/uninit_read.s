; Corrupt fixture: reads of registers no definition reaches. At program
; entry only sp carries a meaningful value; r3 and r4 are never written
; anywhere, so the add consumes garbage (the VM's incidental zeros).
.name uninit_read
.mem 64

	add r2, r3, r4     ; r3 and r4 have no reaching definition
	st r2, 0(zero)
	halt

// Command covergate enforces the repository's test-coverage floor. It
// parses a Go coverprofile, computes statement coverage per package and
// in total, and compares the total against a committed baseline:
//
//	go run ./cmd/covergate -gen ./... -baseline COVERAGE.baseline
//
// -gen runs `go test -coverprofile` itself, writing the profile into a
// temporary directory that is removed on exit, so no coverage artifact
// can land in the working tree (and get committed by accident). Pass
// -keep-profile to also copy the generated profile somewhere for
// downstream tools like `go tool cover -html`. A pre-existing profile
// can still be gated directly with -profile.
//
// The gate fails (exit 1) when total coverage drops more than -slack
// percentage points below the baseline, so refactors cannot silently
// shed tests. Regenerate the baseline after intentionally changing
// coverage:
//
//	go run ./cmd/covergate -gen ./... -write COVERAGE.baseline
//
// The baseline file records per-package percentages too; those lines
// are informational (total is what gates) but make coverage drift
// visible in diffs.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

func main() {
	var (
		profilePath = flag.String("profile", "", "pre-existing coverprofile to gate (alternative to -gen)")
		gen         = flag.String("gen", "", "run `go test -coverprofile` on this package pattern (e.g. ./...) into a temp dir and gate the result")
		keep        = flag.String("keep-profile", "", "with -gen, also copy the generated profile to this path for downstream tools")
		baseline    = flag.String("baseline", "", "committed baseline file to gate against")
		write       = flag.String("write", "", "write a fresh baseline to this file and exit")
		slack       = flag.Float64("slack", 1.0, "allowed drop below baseline total, in percentage points")
	)
	flag.Parse()
	profile := *profilePath
	if *gen != "" {
		if profile != "" {
			fmt.Fprintln(os.Stderr, "covergate: -gen and -profile are mutually exclusive")
			os.Exit(1)
		}
		p, cleanup, err := generateProfile(*gen, *keep)
		if err != nil {
			fmt.Fprintln(os.Stderr, "covergate:", err)
			os.Exit(1)
		}
		defer cleanup()
		profile = p
	}
	if profile == "" {
		fmt.Fprintln(os.Stderr, "covergate: need -profile or -gen")
		os.Exit(1)
	}
	if err := run(profile, *baseline, *write, *slack, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "covergate:", err)
		os.Exit(1)
	}
}

// generateProfile runs `go test -coverprofile` on pattern with the
// profile in a fresh temp directory — never the working tree — and
// returns the profile path plus a cleanup func removing the directory.
// When keep is non-empty the profile is also copied there for tools
// that want it after the gate (e.g. go tool cover -html).
func generateProfile(pattern, keep string) (string, func(), error) {
	dir, err := os.MkdirTemp("", "covergate-")
	if err != nil {
		return "", nil, err
	}
	cleanup := func() { _ = os.RemoveAll(dir) }
	profile := filepath.Join(dir, "cover.out")
	cmd := exec.Command("go", "test", "-coverprofile="+profile, pattern)
	// Test chatter goes to stderr so the gate report on stdout stays
	// machine-readable.
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		cleanup()
		return "", nil, fmt.Errorf("go test -coverprofile %s: %w", pattern, err)
	}
	if keep != "" {
		data, err := os.ReadFile(profile)
		if err == nil {
			err = os.WriteFile(keep, data, 0o644)
		}
		if err != nil {
			cleanup()
			return "", nil, err
		}
	}
	return profile, cleanup, nil
}

// pkgCov accumulates statement counts for one package.
type pkgCov struct {
	total   int
	covered int
}

func (c pkgCov) percent() float64 {
	if c.total == 0 {
		return 0
	}
	return 100 * float64(c.covered) / float64(c.total)
}

// parseProfile reads a coverprofile and returns per-package statement
// coverage keyed by import path.
func parseProfile(r io.Reader) (map[string]*pkgCov, error) {
	pkgs := make(map[string]*pkgCov)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if line == 1 && strings.HasPrefix(text, "mode:") {
			continue
		}
		// file.go:sl.sc,el.ec numStmt hitCount
		colon := strings.LastIndex(text, ":")
		if colon < 0 {
			return nil, fmt.Errorf("line %d: no file separator in %q", line, text)
		}
		file := text[:colon]
		fields := strings.Fields(text[colon+1:])
		if len(fields) != 3 {
			return nil, fmt.Errorf("line %d: want 'range numStmt hitCount', got %q", line, text)
		}
		stmts, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("line %d: bad statement count %q", line, fields[1])
		}
		hits, err := strconv.Atoi(fields[2])
		if err != nil {
			return nil, fmt.Errorf("line %d: bad hit count %q", line, fields[2])
		}
		pkg := path.Dir(file)
		c := pkgs[pkg]
		if c == nil {
			c = &pkgCov{}
			pkgs[pkg] = c
		}
		c.total += stmts
		if hits > 0 {
			c.covered += stmts
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(pkgs) == 0 {
		return nil, fmt.Errorf("empty coverprofile")
	}
	return pkgs, nil
}

// totalOf folds per-package counts into overall statement coverage.
func totalOf(pkgs map[string]*pkgCov) pkgCov {
	var t pkgCov
	for _, c := range pkgs {
		t.total += c.total
		t.covered += c.covered
	}
	return t
}

// render writes the baseline format: a total line followed by sorted
// per-package lines.
func render(w io.Writer, pkgs map[string]*pkgCov) {
	t := totalOf(pkgs)
	fmt.Fprintf(w, "total %.1f\n", t.percent())
	names := make([]string, 0, len(pkgs))
	for name := range pkgs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "package %s %.1f\n", name, pkgs[name].percent())
	}
}

// readBaselineTotal extracts the gating total from a baseline file.
func readBaselineTotal(path string) (float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 2 && fields[0] == "total" {
			return strconv.ParseFloat(fields[1], 64)
		}
	}
	if err := sc.Err(); err != nil {
		return 0, err
	}
	return 0, fmt.Errorf("no 'total' line in %s", path)
}

func run(profilePath, baseline, write string, slack float64, out io.Writer) error {
	f, err := os.Open(profilePath)
	if err != nil {
		return err
	}
	pkgs, err := parseProfile(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	total := totalOf(pkgs)

	if write != "" {
		var b strings.Builder
		render(&b, pkgs)
		if err := os.WriteFile(write, []byte(b.String()), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s (total %.1f%%, %d packages)\n", write, total.percent(), len(pkgs))
		return nil
	}

	render(out, pkgs)
	if baseline == "" {
		return nil
	}
	floor, err := readBaselineTotal(baseline)
	if err != nil {
		return err
	}
	got := total.percent()
	fmt.Fprintf(out, "baseline %.1f, slack %.1f\n", floor, slack)
	if got < floor-slack {
		return fmt.Errorf("total coverage %.1f%% below baseline %.1f%% - %.1f slack", got, floor, slack)
	}
	fmt.Fprintf(out, "coverage gate ok: %.1f%% >= %.1f%%\n", got, floor-slack)
	return nil
}

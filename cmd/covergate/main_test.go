package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

const sampleProfile = `mode: set
repro/internal/graph/graph.go:10.2,12.3 3 1
repro/internal/graph/graph.go:14.2,16.3 2 0
repro/internal/graph/clique.go:5.2,9.3 5 7
repro/internal/core/core.go:20.2,25.3 4 1
repro/internal/core/core.go:30.2,31.3 6 0
`

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestParseProfile(t *testing.T) {
	pkgs, err := parseProfile(strings.NewReader(sampleProfile))
	if err != nil {
		t.Fatal(err)
	}
	g := pkgs["repro/internal/graph"]
	if g == nil || g.total != 10 || g.covered != 8 {
		t.Fatalf("graph coverage = %+v, want 8/10", g)
	}
	c := pkgs["repro/internal/core"]
	if c == nil || c.total != 10 || c.covered != 4 {
		t.Fatalf("core coverage = %+v, want 4/10", c)
	}
	tot := totalOf(pkgs)
	if tot.total != 20 || tot.covered != 12 {
		t.Fatalf("total = %+v, want 12/20", tot)
	}
	if got := tot.percent(); got != 60.0 {
		t.Fatalf("percent = %v, want 60", got)
	}
}

func TestParseProfileRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"mode: set\nnot a coverage line\n",
		"mode: set\nfile.go:1.1,2.2 x 1\n",
		"",
	} {
		if _, err := parseProfile(strings.NewReader(bad)); err == nil {
			t.Errorf("profile %q parsed without error", bad)
		}
	}
}

// TestGatePassAndFail exercises the full gate: a baseline written from
// one profile passes against itself and fails against a profile whose
// coverage dropped beyond the slack.
func TestGatePassAndFail(t *testing.T) {
	profile := writeFile(t, "cover.out", sampleProfile)
	baseline := filepath.Join(t.TempDir(), "COVERAGE.baseline")

	var out strings.Builder
	if err := run(profile, "", baseline, 1.0, &out); err != nil {
		t.Fatalf("write baseline: %v", err)
	}
	out.Reset()
	if err := run(profile, baseline, "", 1.0, &out); err != nil {
		t.Fatalf("gate against own baseline: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "coverage gate ok") {
		t.Fatalf("missing ok line:\n%s", out.String())
	}

	// Drop coverage: mark every statement unhit.
	dropped := strings.ReplaceAll(sampleProfile, " 1\n", " 0\n")
	dropped = strings.ReplaceAll(dropped, " 7\n", " 0\n")
	profile2 := writeFile(t, "cover2.out", dropped)
	out.Reset()
	err := run(profile2, baseline, "", 1.0, &out)
	if err == nil || !strings.Contains(err.Error(), "below baseline") {
		t.Fatalf("gate passed on dropped coverage (err=%v)", err)
	}
}

// TestGenerateProfileBadPattern asserts the -gen path surfaces go test
// failures and leaves nothing behind in the working directory.
func TestGenerateProfileBadPattern(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool not on PATH")
	}
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := generateProfile("./does-not-exist", ""); err == nil {
		t.Fatal("generateProfile succeeded on a nonexistent package")
	}
	if _, err := os.Stat(filepath.Join(wd, "cover.out")); !os.IsNotExist(err) {
		t.Fatalf("cover.out appeared in the working directory (stat err=%v)", err)
	}
}

func TestReadBaselineTotal(t *testing.T) {
	p := writeFile(t, "b", "total 61.5\npackage repro/internal/graph 80.0\n")
	got, err := readBaselineTotal(p)
	if err != nil || got != 61.5 {
		t.Fatalf("readBaselineTotal = %v, %v", got, err)
	}
	p2 := writeFile(t, "b2", "package only 1.0\n")
	if _, err := readBaselineTotal(p2); err == nil {
		t.Fatal("baseline without total accepted")
	}
}

// Command tables regenerates every table and figure of the paper's
// evaluation (Tables 1-4, Figures 3-4). See DESIGN.md for the
// per-experiment index and EXPERIMENTS.md for recorded results.
//
// Usage:
//
//	tables [-scale f] [-table n] [-figure n] [-markdown] [-quiet]
//	       [-workers n] [-shards n] [-fused] [-static]
//	       [-zoo] [-graphs] [-charact] [-predictor list]
//	       [-cpuprofile f] [-memprofile f]
//
// Without -table/-figure it runs everything. -static runs the
// static-vs-profiled comparison (compile-time working-set estimation,
// no profile run feeding the allocator). -zoo runs the predictor zoo
// (allocated vs conventional indexing for PAg, gshare, TAGE, and the
// hashed perceptron; -predictor restricts the kinds). -graphs runs the
// graph workloads (BFS, connected components, and triangle counting
// over seeded generated graphs, branchy vs branch-avoiding variants)
// under the same zoo. -charact runs the branch predictability
// characterization (per-branch bias, direction entropy, and
// history-conditioned entropy, aggregated per benchmark). -markdown emits
// GitHub-style tables suitable for EXPERIMENTS.md. Benchmarks run
// concurrently (-workers, default GOMAXPROCS) and, by default, in fused
// streaming mode (-fused=false restores record-then-replay); the
// rendered output is byte-identical across worker counts and modes.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/harness"
	"repro/internal/obs"
)

func main() {
	var (
		scale      = flag.Float64("scale", 1.0, "workload scale factor (1.0 = default size; larger approaches paper scale)")
		table      = flag.Int("table", 0, "run only this table (1-4)")
		figure     = flag.Int("figure", 0, "run only this figure (3 or 4)")
		markdown   = flag.Bool("markdown", false, "emit markdown tables")
		quiet      = flag.Bool("quiet", false, "suppress progress output")
		budget     = flag.Int("clique-budget", 0, "maximal-clique enumeration budget (0 = default)")
		ablation   = flag.Bool("ablations", false, "also run the ablation studies (threshold, definition, grouped, window)")
		static     = flag.Bool("static", false, "run the static-vs-profiled comparison (profile-free allocation from the compile-time estimate)")
		extras     = flag.Bool("extras", false, "also run the extended experiments (related-work predictor comparison, pipeline cost model)")
		zoo        = flag.Bool("zoo", false, "run the predictor zoo (gshare, TAGE, perceptron, PAg): allocated vs conventional indexing per table size")
		graphs     = flag.Bool("graphs", false, "run the graph workloads (BFS, CC, triangle over generated graphs): branchy vs branch-avoiding kernels under the zoo")
		charact    = flag.Bool("charact", false, "run the branch predictability characterization (bias, entropy, history sensitivity) over the classic and graph benchmarks")
		predictor  = flag.String("predictor", "", "restrict -zoo to these comma-separated predictors (pag, gshare, tage, perceptron)")
		check      = flag.Bool("check", false, "run the internal/analysis artifact verifiers on every produced artifact")
		progCheck  = flag.Bool("progcheck", false, "verify every compiled program with the static program verifier before it runs; error findings fail the run")
		workers    = flag.Int("workers", 0, "concurrent benchmark workers (0 = GOMAXPROCS, 1 = serial)")
		shards     = flag.Int("shards", 0, "intra-benchmark pair-count shards and clique-mining workers (0 = GOMAXPROCS, 1 = serial)")
		fused      = flag.Bool("fused", true, "stream branch events straight into the analyses instead of recording full traces")
		metrics    = flag.Bool("metrics", false, "instrument the run and dump the metrics registry (text encoding) to stderr on exit")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tables:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "tables:", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "tables:", err)
			}
		}()
	}

	var progress io.Writer = os.Stderr
	if *quiet {
		progress = nil
	}
	var reg *obs.Registry
	if *metrics {
		reg = obs.NewRegistry()
	}
	suite := harness.NewSuite(harness.Config{
		Scale:         *scale,
		CliqueBudget:  *budget,
		Check:         *check,
		Workers:       *workers,
		ProfileShards: *shards,
		Fused:         *fused,
		Progress:      progress,
		Metrics:       obs.New(reg),
		Static:        *static,
		ProgCheck:     *progCheck,
	})

	if *predictor != "" && !*zoo && !*graphs {
		fmt.Fprintln(os.Stderr, "tables: -predictor only applies to -zoo and -graphs runs")
		os.Exit(1)
	}

	runAll := *table == 0 && *figure == 0 && !*ablation && !*extras && !*static && !*zoo && !*graphs && !*charact
	// Progress timing goes to stderr and never into a table; the clock
	// comes from obs so the wall-clock read stays in one sanctioned place.
	clock := obs.SystemClock()
	start := clock.Now()
	if err := run(suite, runAll, *table, *figure, *markdown); err != nil {
		fmt.Fprintln(os.Stderr, "tables:", err)
		os.Exit(1)
	}
	if *ablation {
		if err := harness.RunAblations(suite, os.Stdout, *markdown); err != nil {
			fmt.Fprintln(os.Stderr, "tables:", err)
			os.Exit(1)
		}
	}
	if *extras {
		if err := harness.RunExtras(suite, os.Stdout, *markdown); err != nil {
			fmt.Fprintln(os.Stderr, "tables:", err)
			os.Exit(1)
		}
	}
	if *zoo {
		if err := harness.RunZoo(suite, os.Stdout, *markdown, splitKinds(*predictor)...); err != nil {
			fmt.Fprintln(os.Stderr, "tables:", err)
			os.Exit(1)
		}
	}
	if *graphs {
		if err := harness.RunGraphs(suite, os.Stdout, *markdown, splitKinds(*predictor)...); err != nil {
			fmt.Fprintln(os.Stderr, "tables:", err)
			os.Exit(1)
		}
	}
	if *charact {
		if err := harness.RunCharact(suite, os.Stdout, *markdown); err != nil {
			fmt.Fprintln(os.Stderr, "tables:", err)
			os.Exit(1)
		}
	}
	// RunAll already appends the static section when it ran (the suite
	// is configured with Static); a filtered invocation runs it here.
	if *static && !runAll {
		if err := harness.RunStatic(suite, os.Stdout, *markdown); err != nil {
			fmt.Fprintln(os.Stderr, "tables:", err)
			os.Exit(1)
		}
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "total: %s\n", clock.Now().Sub(start).Round(time.Millisecond))
	}
	if reg != nil {
		fmt.Fprintf(os.Stderr, "metrics:\n")
		if err := obs.WriteText(os.Stderr, reg.Snapshot()); err != nil {
			fmt.Fprintln(os.Stderr, "tables:", err)
			os.Exit(1)
		}
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tables:", err)
			os.Exit(1)
		}
		runtime.GC() // settle allocations so the heap profile reflects retention
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "tables:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "tables:", err)
			os.Exit(1)
		}
	}
}

// splitKinds parses the -predictor flag: comma-separated kind names,
// empty string meaning "all" (the nil slice RunZoo interprets that way).
func splitKinds(s string) []string {
	if s == "" {
		return nil
	}
	var kinds []string
	for _, k := range strings.Split(s, ",") {
		if k = strings.TrimSpace(k); k != "" {
			kinds = append(kinds, k)
		}
	}
	return kinds
}

func run(suite *harness.Suite, all bool, table, figure int, markdown bool) error {
	if all {
		return harness.RunAll(suite, os.Stdout, markdown)
	}
	if table != 0 {
		if err := harness.RunTable(suite, os.Stdout, table, markdown); err != nil {
			return err
		}
	}
	if figure != 0 {
		if err := harness.RunFigure(suite, os.Stdout, figure, markdown); err != nil {
			return err
		}
	}
	return nil
}

// Command tables regenerates every table and figure of the paper's
// evaluation (Tables 1-4, Figures 3-4). See DESIGN.md for the
// per-experiment index and EXPERIMENTS.md for recorded results.
//
// Usage:
//
//	tables [-scale f] [-table n] [-figure n] [-markdown] [-quiet]
//
// Without -table/-figure it runs everything. -markdown emits
// GitHub-style tables suitable for EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/harness"
	"repro/internal/pipeline"
)

func main() {
	var (
		scale    = flag.Float64("scale", 1.0, "workload scale factor (1.0 = default size; larger approaches paper scale)")
		table    = flag.Int("table", 0, "run only this table (1-4)")
		figure   = flag.Int("figure", 0, "run only this figure (3 or 4)")
		markdown = flag.Bool("markdown", false, "emit markdown tables")
		quiet    = flag.Bool("quiet", false, "suppress progress output")
		budget   = flag.Int("clique-budget", 0, "maximal-clique enumeration budget (0 = default)")
		ablation = flag.Bool("ablations", false, "also run the ablation studies (threshold, definition, grouped, window)")
		extras   = flag.Bool("extras", false, "also run the extended experiments (related-work predictor comparison, pipeline cost model)")
		check    = flag.Bool("check", false, "run the internal/analysis artifact verifiers on every produced artifact")
	)
	flag.Parse()

	var progress io.Writer = os.Stderr
	if *quiet {
		progress = nil
	}
	suite := harness.NewSuite(harness.Config{
		Scale:        *scale,
		CliqueBudget: *budget,
		Check:        *check,
		Progress:     progress,
	})

	runAll := *table == 0 && *figure == 0 && !*ablation && !*extras
	// Progress timing is intentionally wall-clock: it goes to stderr and
	// never into a table.
	start := time.Now() //reprolint:allow entropy stderr progress timing only
	if err := run(suite, runAll, *table, *figure, *markdown); err != nil {
		fmt.Fprintln(os.Stderr, "tables:", err)
		os.Exit(1)
	}
	if *ablation {
		if err := runAblations(suite, *markdown); err != nil {
			fmt.Fprintln(os.Stderr, "tables:", err)
			os.Exit(1)
		}
	}
	if *extras {
		if err := runExtras(suite, *markdown); err != nil {
			fmt.Fprintln(os.Stderr, "tables:", err)
			os.Exit(1)
		}
	}
	if !*quiet {
		//reprolint:allow entropy stderr progress timing only
		fmt.Fprintf(os.Stderr, "total: %s\n", time.Since(start).Round(time.Millisecond))
	}
}

func run(suite *harness.Suite, all bool, table, figure int, markdown bool) error {
	section := func(title string) {
		fmt.Printf("\n## %s\n\n", title)
	}
	if all || table == 1 {
		rows, err := suite.Table1()
		if err != nil {
			return err
		}
		section("Table 1: benchmarks, dynamic branches, and analysis coverage")
		fmt.Print(harness.RenderTable1(rows, markdown))
	}
	if all || table == 2 {
		rows, err := suite.Table2()
		if err != nil {
			return err
		}
		section("Table 2: branch working set sizes")
		fmt.Print(harness.RenderTable2(rows, markdown))
	}
	if all || table == 3 {
		rows, err := suite.Table3()
		if err != nil {
			return err
		}
		section("Table 3: BHT size required for branch allocation")
		fmt.Print(harness.RenderSizeTable(rows, suite.Config().BaselineBHT, markdown))
	}
	if all || table == 4 {
		rows, err := suite.Table4()
		if err != nil {
			return err
		}
		section("Table 4: BHT size required with branch classification")
		fmt.Print(harness.RenderSizeTable(rows, suite.Config().BaselineBHT, markdown))
	}
	if all || figure == 3 {
		f, err := suite.Figure3()
		if err != nil {
			return err
		}
		section("Figure 3: misprediction rates, branch allocation")
		fmt.Print(harness.RenderFigure(f, markdown))
		fmt.Printf("\naverage improvement of alloc-%d over conventional: %.1f%%\n",
			f.Sizes[len(f.Sizes)-1], 100*f.Average.Improvement())
	}
	if all || figure == 4 {
		f, err := suite.Figure4()
		if err != nil {
			return err
		}
		section("Figure 4: misprediction rates, allocation with classification")
		fmt.Print(harness.RenderFigure(f, markdown))
		fmt.Printf("\naverage improvement of alloc-%d over conventional: %.1f%%\n",
			f.Sizes[len(f.Sizes)-1], 100*f.Average.Improvement())
	}
	return nil
}

// ablationBenchmarks is a representative spread: one small, one medium,
// one large program.
var ablationBenchmarks = []string{"compress", "li", "gcc"}

func runAblations(suite *harness.Suite, markdown bool) error {
	section := func(title string) { fmt.Printf("\n## %s\n\n", title) }

	th, err := suite.AblationThreshold(ablationBenchmarks, nil)
	if err != nil {
		return err
	}
	section("Ablation: pruning threshold sensitivity (paper Section 4.2 claim)")
	fmt.Print(harness.RenderAblationThreshold(th, markdown))

	def, err := suite.AblationDefinition(ablationBenchmarks)
	if err != nil {
		return err
	}
	section("Ablation: working-set definition (maximal cliques vs greedy partition)")
	fmt.Print(harness.RenderAblationDefinition(def, markdown))

	grp, err := suite.AblationGrouped(ablationBenchmarks)
	if err != nil {
		return err
	}
	section("Ablation: pre-classified branch groups (paper Sections 2/6 extension)")
	fmt.Print(harness.RenderAblationGrouped(grp, markdown))

	win, err := suite.AblationWindow("li", nil)
	if err != nil {
		return err
	}
	section("Ablation: interleave scan window (this reproduction's optimization)")
	fmt.Print(harness.RenderAblationWindow(win, markdown))
	return nil
}

func runExtras(suite *harness.Suite, markdown bool) error {
	section := func(title string) { fmt.Printf("\n## %s\n\n", title) }

	cmp, err := suite.Comparison()
	if err != nil {
		return err
	}
	section("Extended: branch allocation vs hardware anti-interference schemes")
	fmt.Print(harness.RenderComparison(cmp, markdown))

	model := pipeline.Deep()
	costs, err := suite.PipelineCosts(model)
	if err != nil {
		return err
	}
	section("Extended: modeled pipeline cost (deeply pipelined front end)")
	fmt.Print(harness.RenderPipeline(costs, model, markdown))
	return nil
}

package main

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestTimeRunUsesInjectedClock proves bench timing is fully driven by
// the injected clock: under a FakeClock stepping 7ms per read, any
// successful run measures exactly one step, regardless of real elapsed
// time.
func TestTimeRunUsesInjectedClock(t *testing.T) {
	clock := obs.NewFakeClock(time.Unix(0, 0), 7*time.Millisecond)
	d, err := timeRun(clock, func() error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if d != 7*time.Millisecond {
		t.Errorf("timeRun = %v, want exactly 7ms (one clock step)", d)
	}

	// A frozen clock (step 0) must measure zero.
	d, err = timeRun(obs.NewFakeClock(time.Unix(0, 0), 0), func() error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Errorf("timeRun under frozen clock = %v, want 0", d)
	}
}

// TestTimeRunError checks the error path returns the function's error
// and a zero duration.
func TestTimeRunError(t *testing.T) {
	boom := errors.New("boom")
	clock := obs.NewFakeClock(time.Unix(0, 0), time.Second)
	d, err := timeRun(clock, func() error { return boom })
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want boom", err)
	}
	if d != 0 {
		t.Errorf("duration on error = %v, want 0", d)
	}
}

// writeBaseline marshals a Report into a temp baseline file.
func writeBaseline(t *testing.T, rep Report) string {
	t.Helper()
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCompareRegression covers the baseline comparison logic with a
// synthetic baseline: within-tolerance passes, beyond-tolerance fails
// with the offending experiment named, and experiments new to the run
// (absent from the baseline) are ignored.
func TestCompareRegression(t *testing.T) {
	base := Report{
		Scale: 0.1,
		Experiments: []ExperimentResult{
			{Name: "table1", NsPerOp: 1000},
			{Name: "table2", NsPerOp: 1000},
		},
	}
	path := writeBaseline(t, base)

	ok := &Report{
		Scale: 0.1,
		Experiments: []ExperimentResult{
			{Name: "table1", NsPerOp: 1200}, // +20% within 25% tolerance
			{Name: "table2", NsPerOp: 900},
			{Name: "figure3", NsPerOp: 5000}, // not in baseline: skipped
		},
	}
	if err := compare(path, ok, 0.25); err != nil {
		t.Errorf("within-tolerance run failed comparison: %v", err)
	}

	bad := &Report{
		Scale: 0.1,
		Experiments: []ExperimentResult{
			{Name: "table1", NsPerOp: 1300}, // +30% beyond 25% tolerance
			{Name: "table2", NsPerOp: 1000},
		},
	}
	err := compare(path, bad, 0.25)
	if err == nil {
		t.Fatal("regressed run passed comparison")
	}
	if !strings.Contains(err.Error(), "table1") {
		t.Errorf("regression error does not name the experiment: %v", err)
	}

	if err := compare(filepath.Join(t.TempDir(), "missing.json"), ok, 0.25); err == nil {
		t.Error("missing baseline file did not error")
	}
}

// Command bench measures the experiment harness and emits a
// machine-readable benchmark report (default BENCH_7.json) for
// regression tracking: per-experiment ns/op, allocs/op, bytes/op and
// approximate branch-stream throughput in Mbranches/s, a suite section
// comparing serial record-then-replay against the parallel fused
// pipeline (wall clock, retained trace memory, fused throughput), and a
// sharding sweep over P ∈ {1, 2, 4, 8} profile shards recording wall
// clock, speedup vs P=1, throughput, and table memory at every point —
// at the suite level (where the harness clamps P to GOMAXPROCS; clamped
// points are marked and reuse the measurement of the effective P) and
// as a direct profile pass with exact sharding.
//
// Usage:
//
//	bench [-scale 0.1] [-workers 8] [-o BENCH_7.json]
//	      [-baseline BENCH_7.json] [-tolerance 0.25] [-update]
//	      [-min-suite-speedup 1.0]
//
// With -baseline it compares each experiment's ns/op against the
// committed baseline and exits nonzero on a regression beyond the
// tolerance. Baselines are machine-specific: regenerate with -update
// when the reference hardware changes. -min-suite-speedup fails the run
// if any sweep point's suite-level speedup over P=1 drops below the
// bound — the guard against reintroducing the sharding regression.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/predict"
	"repro/internal/profile"
	"repro/internal/workload"
)

// ExperimentResult is one benchmarked experiment.
type ExperimentResult struct {
	Name          string  `json:"name"`
	NsPerOp       int64   `json:"ns_per_op"`
	AllocsPerOp   int64   `json:"allocs_per_op"`
	BytesPerOp    int64   `json:"bytes_per_op"`
	MBranchesPerS float64 `json:"mbranches_per_s"`
}

// SuiteComparison contrasts the two harness pipelines over a full run
// (all tables and figures).
type SuiteComparison struct {
	Workers          int     `json:"workers"`
	SerialRecordNs   int64   `json:"serial_record_ns"`
	ParallelFusedNs  int64   `json:"parallel_fused_ns"`
	Speedup          float64 `json:"speedup"`
	RecordTraceBytes uint64  `json:"record_trace_bytes"`
	FusedTraceBytes  uint64  `json:"fused_trace_bytes"`
	// FusedMBranchesPerS is the fused pipeline's end-to-end branch
	// throughput (ROADMAP item #1 tracks this against 10 Mbranches/s).
	FusedMBranchesPerS float64 `json:"fused_mbranches_per_s"`
}

// ShardPoint is one P in the sharding sweep.
type ShardPoint struct {
	Shards int `json:"shards"`
	// Clamped marks suite-level points where the harness clamped P to
	// GOMAXPROCS (sharding beyond the machine's parallelism is pure
	// overhead). A clamped point reuses the measurement of its
	// effective P, so its suite speedup is 1.0 by construction; the
	// profile-level columns always use exact sharding.
	Clamped              bool    `json:"clamped"`
	SuiteNs              int64   `json:"suite_ns"`
	SuiteSpeedup         float64 `json:"suite_speedup"`
	SuiteMBranchesPerS   float64 `json:"suite_mbranches_per_s"`
	ProfileNs            int64   `json:"profile_ns"`
	ProfileSpeedup       float64 `json:"profile_speedup"`
	ProfileMBranchesPerS float64 `json:"profile_mbranches_per_s"`
	// ShardTableBytes is the sharding-only overhead (staging batches
	// and partition headers) — the memory the sharded mode costs on
	// top of the counters themselves; 0 at P=1.
	ShardTableBytes uint64 `json:"shard_table_bytes"`
	// TableBytes is the absolute footprint of the interleave counter
	// tables in either mode.
	TableBytes uint64 `json:"table_bytes"`
}

// ShardingComparison sweeps the intra-benchmark hot paths over shard
// counts: the full table+figure composition (fused, one benchmark
// worker, so only intra-benchmark parallelism differs) and a direct
// unfiltered profile pass on one benchmark. Output is byte-identical at
// every P; only time and memory differ — the differential suites in
// internal/profile enforce this, and the merged pair count is checked
// for equality across the sweep here.
type ShardingComparison struct {
	ProfileBenchmark string       `json:"profile_benchmark"`
	MergedPairs      int          `json:"merged_pairs"`
	Sweep            []ShardPoint `json:"sweep"`
}

// Report is the BENCH_7.json schema.
type Report struct {
	Scale       float64            `json:"scale"`
	GoMaxProcs  int                `json:"gomaxprocs"`
	Experiments []ExperimentResult `json:"experiments"`
	Suite       SuiteComparison    `json:"suite"`
	Sharding    ShardingComparison `json:"sharding"`
}

// shardSweep is the sharding sweep's shard counts.
var shardSweep = []int{1, 2, 4, 8}

func main() {
	var (
		scale      = flag.Float64("scale", 0.1, "workload scale factor for the benchmarks")
		workers    = flag.Int("workers", 8, "worker count for the parallel fused comparison")
		out        = flag.String("o", "BENCH_7.json", "write the benchmark report here")
		baseline   = flag.String("baseline", "", "compare against this baseline report")
		tolerance  = flag.Float64("tolerance", 0.25, "allowed fractional ns/op regression vs the baseline")
		update     = flag.Bool("update", false, "overwrite the baseline with this run's report")
		metrics    = flag.Bool("metrics", false, "instrument the comparison runs and dump the metrics registry (text encoding) to stderr")
		minSpeedup = flag.Float64("min-suite-speedup", 0, "fail if any sweep point's suite-level sharding speedup is below this (0 disables)")
		predictor  = flag.String("predictor", "", "also benchmark the predictor zoo for these comma-separated kinds (pag, gshare, tage, perceptron; 'all' runs the whole zoo)")
		graphsFlag = flag.Bool("graphs", false, "also benchmark the graph-workload experiment (full zoo over the BFS/CC/triangle family) and the predictability characterization")
	)
	flag.Parse()

	zooKinds, err := parseZooKinds(*predictor)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}

	var reg *obs.Registry
	if *metrics {
		reg = obs.NewRegistry()
	}
	rep, err := measure(obs.SystemClock(), *scale, *workers, zooKinds, *graphsFlag, obs.New(reg))
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	if reg != nil {
		if err := obs.WriteText(os.Stderr, reg.Snapshot()); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)

	if *minSpeedup > 0 {
		for _, pt := range rep.Sharding.Sweep {
			if pt.SuiteSpeedup < *minSpeedup {
				fmt.Fprintf(os.Stderr, "bench: suite speedup %.3f at shards=%d below required %.2f\n",
					pt.SuiteSpeedup, pt.Shards, *minSpeedup)
				os.Exit(1)
			}
		}
	}

	if *baseline != "" && !*update {
		if err := compare(*baseline, rep, *tolerance); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
	}
	if *update && *baseline != "" && *baseline != *out {
		if err := os.WriteFile(*baseline, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		fmt.Printf("updated baseline %s\n", *baseline)
	}
}

// experiment is one benchmarkable harness experiment.
type experiment struct {
	name string
	run  func(*harness.Suite) error
}

func experiments(zooKinds []string, withGraphs bool) []experiment {
	table := func(n int) func(*harness.Suite) error {
		return func(s *harness.Suite) error { return discardTable(s, n) }
	}
	figure := func(n int) func(*harness.Suite) error {
		return func(s *harness.Suite) error { return discardFigure(s, n) }
	}
	exps := []experiment{
		{"table1", table(1)},
		{"table2", table(2)},
		{"table3", table(3)},
		{"table4", table(4)},
		{"figure3", figure(3)},
		{"figure4", figure(4)},
	}
	// The zoo entries are opt-in (-predictor): each measures one zoo
	// member's full allocated-vs-conventional run over the benchmark set,
	// so predictor update-loop throughput is tracked per scheme. compare()
	// skips experiments absent from the baseline, so opt-in entries don't
	// invalidate committed baselines.
	for _, kind := range zooKinds {
		kind := kind
		exps = append(exps, experiment{"zoo-" + kind, func(s *harness.Suite) error {
			return harness.RunZoo(s, io.Discard, false, kind)
		}})
	}
	// The graph entries are opt-in (-graphs) the same way: "graphs"
	// measures the full zoo over the graph family end to end (generate,
	// compile, execute, profile, allocate, simulate), "charact" the
	// characterization pass over the classic and graph benchmarks.
	if withGraphs {
		exps = append(exps,
			experiment{"graphs", func(s *harness.Suite) error {
				return harness.RunGraphs(s, io.Discard, false)
			}},
			experiment{"charact", func(s *harness.Suite) error {
				return harness.RunCharact(s, io.Discard, false)
			}},
		)
	}
	return exps
}

// parseZooKinds parses -predictor: comma-separated zoo kinds, "all" for
// the whole zoo, empty for none. Unknown kinds fail before any run.
func parseZooKinds(s string) ([]string, error) {
	if s == "" {
		return nil, nil
	}
	if s == "all" {
		return predict.ZooKinds(), nil
	}
	var kinds []string
	for _, k := range strings.Split(s, ",") {
		k = strings.TrimSpace(k)
		if k == "" {
			continue
		}
		if !predict.ValidZooKind(k) {
			return nil, fmt.Errorf("unknown predictor %q (have %v)", k, predict.ZooKinds())
		}
		kinds = append(kinds, k)
	}
	return kinds, nil
}

// Rendering goes to io.Discard: formatting is part of the experiment,
// terminal I/O is not.
func discardTable(s *harness.Suite, n int) error {
	return harness.RunTable(s, io.Discard, n, false)
}

func discardFigure(s *harness.Suite, n int) error {
	return harness.RunFigure(s, io.Discard, n, false)
}

// timeRun measures f's wall-clock duration on the injected clock — the
// single timing primitive every comparison below uses, so bench output
// is testable under a FakeClock (no ambient time.Now anywhere here).
func timeRun(clock obs.Clock, f func() error) (time.Duration, error) {
	start := clock.Now()
	if err := f(); err != nil {
		return 0, err
	}
	return clock.Now().Sub(start), nil
}

func measure(clock obs.Clock, scale float64, workers int, zooKinds []string, withGraphs bool, m *obs.Metrics) (*Report, error) {
	rep := &Report{Scale: scale, GoMaxProcs: runtime.GOMAXPROCS(0)}

	for _, e := range experiments(zooKinds, withGraphs) {
		e := e
		var benchErr error
		var branchesPerOp uint64
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				// A fresh suite per iteration measures the experiment
				// cold: workload execution, filtering, profiling,
				// analysis, simulation and rendering.
				s := harness.NewSuite(harness.Config{Scale: scale, Fused: true})
				if err := e.run(s); err != nil {
					benchErr = err
					b.FailNow()
				}
				if i == 0 {
					branchesPerOp = streamBranches(s)
				}
			}
		})
		if benchErr != nil {
			return nil, fmt.Errorf("%s: %w", e.name, benchErr)
		}
		res := ExperimentResult{
			Name:        e.name,
			NsPerOp:     r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if r.NsPerOp() > 0 {
			res.MBranchesPerS = float64(branchesPerOp) / (float64(r.NsPerOp()) / 1e9) / 1e6
		}
		fmt.Printf("%-8s %12d ns/op %12d B/op %9d allocs/op %8.2f Mbranches/s\n",
			res.Name, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp, res.MBranchesPerS)
		rep.Experiments = append(rep.Experiments, res)
	}

	suite, err := compareSuites(clock, scale, workers, m)
	if err != nil {
		return nil, err
	}
	rep.Suite = *suite
	fmt.Printf("suite    serial/record %v, parallel(%d)/fused %v: %.2fx, trace bytes %d -> %d, fused %.2f Mbranches/s\n",
		time.Duration(suite.SerialRecordNs), suite.Workers, time.Duration(suite.ParallelFusedNs),
		suite.Speedup, suite.RecordTraceBytes, suite.FusedTraceBytes, suite.FusedMBranchesPerS)

	sharding, err := compareSharding(clock, scale, shardSweep, m)
	if err != nil {
		return nil, err
	}
	rep.Sharding = *sharding
	for _, pt := range sharding.Sweep {
		clamp := ""
		if pt.Clamped {
			clamp = " (clamped)"
		}
		fmt.Printf("sharding P=%d%-10s suite %v %.2fx %.2f Mbr/s; profile %s %v %.2fx %.2f Mbr/s, overhead %d B, tables %d B\n",
			pt.Shards, clamp, time.Duration(pt.SuiteNs), pt.SuiteSpeedup, pt.SuiteMBranchesPerS,
			sharding.ProfileBenchmark, time.Duration(pt.ProfileNs), pt.ProfileSpeedup, pt.ProfileMBranchesPerS,
			pt.ShardTableBytes, pt.TableBytes)
	}
	return rep, nil
}

// compareSharding sweeps the intra-benchmark hot paths over the shard
// counts in sweep: the full table+figure composition (fused, one
// benchmark worker, so only intra-benchmark parallelism differs), and a
// direct unfiltered profile pass over the heaviest benchmark's branch
// stream, where the table memory costs are also read.
//
// The harness clamps suite-level sharding to GOMAXPROCS (running more
// workers than cores is pure overhead), so sweep points beyond the
// machine's parallelism are marked Clamped and reuse the measurement of
// their effective P — by construction their suite speedup is that of
// the clamp target. The profile pass always uses exact sharding.
func compareSharding(clock obs.Clock, scale float64, sweep []int, m *obs.Metrics) (*ShardingComparison, error) {
	type suiteRun struct {
		ns       int64
		branches uint64
	}
	maxP := runtime.GOMAXPROCS(0)
	suiteByEff := make(map[int]suiteRun)
	runSuite := func(profileShards int) (suiteRun, error) {
		s := harness.NewSuite(harness.Config{
			Scale: scale, Workers: 1, Fused: true, ProfileShards: profileShards, Metrics: m,
		})
		elapsed, err := timeRun(clock, func() error {
			return harness.RunAll(s, io.Discard, false)
		})
		if err != nil {
			return suiteRun{}, err
		}
		return suiteRun{ns: elapsed.Nanoseconds(), branches: streamBranches(s)}, nil
	}

	const profileBench = "gcc" // largest static branch set in the suite
	spec, err := workload.ByName(profileBench)
	if err != nil {
		return nil, err
	}
	runCfg := workload.RunConfig{Input: workload.InputRef, Scale: scale}

	c := &ShardingComparison{ProfileBenchmark: profileBench, MergedPairs: -1}
	var suiteBase, profBase int64
	for _, p := range sweep {
		eff := p
		if eff > maxP {
			eff = maxP
		}
		sr, ok := suiteByEff[eff]
		if !ok {
			if sr, err = runSuite(eff); err != nil {
				return nil, err
			}
			suiteByEff[eff] = sr
		}

		prof := profile.NewProfiler(profileBench, workload.InputRef.Name,
			profile.WithShards(p), profile.WithMetrics(m.Profile()))
		prof.Reserve(spec.StaticBranches())
		var pairs int
		profElapsed, err := timeRun(clock, func() error {
			if _, err := spec.RunInto(runCfg, prof); err != nil {
				return err
			}
			merged := prof.Profile()
			pairs = merged.Pairs.Len()
			merged.Release()
			return nil
		})
		if err != nil {
			return nil, err
		}
		if c.MergedPairs < 0 {
			c.MergedPairs = pairs
		} else if pairs != c.MergedPairs {
			return nil, fmt.Errorf("sharding sweep: merged pair count diverged at P=%d: %d vs %d", p, pairs, c.MergedPairs)
		}

		pt := ShardPoint{
			Shards:          p,
			Clamped:         eff != p,
			SuiteNs:         sr.ns,
			ProfileNs:       profElapsed.Nanoseconds(),
			ShardTableBytes: prof.ShardTableBytes(),
			TableBytes:      prof.TableBytes(),
		}
		if sr.ns > 0 {
			pt.SuiteMBranchesPerS = float64(sr.branches) / (float64(sr.ns) / 1e9) / 1e6
		}
		if pt.ProfileNs > 0 {
			pt.ProfileMBranchesPerS = float64(prof.Branches()) / (float64(pt.ProfileNs) / 1e9) / 1e6
		}
		if p == sweep[0] {
			suiteBase, profBase = sr.ns, pt.ProfileNs
		}
		if sr.ns > 0 {
			pt.SuiteSpeedup = float64(suiteBase) / float64(sr.ns)
		}
		if pt.ProfileNs > 0 {
			pt.ProfileSpeedup = float64(profBase) / float64(pt.ProfileNs)
		}
		c.Sweep = append(c.Sweep, pt)
	}
	return c, nil
}

// streamBranches estimates the branch events that flowed through the
// experiment's artifact pipeline: every cached benchmark contributed
// its full stream (execution) plus its filtered stream (profiling).
// It is a throughput denominator, not an exact event count — figure
// re-executions and replays are not included. See README "Performance".
func streamBranches(s *harness.Suite) uint64 {
	var total uint64
	for _, name := range workload.Names() {
		for _, input := range []workload.InputSet{workload.InputRef, workload.InputA, workload.InputB} {
			a, ok := s.Cached(name, input)
			if !ok {
				continue
			}
			total += a.Filter.DynamicTotal + a.Filter.DynamicKept
		}
	}
	for _, name := range workload.GraphNames() {
		if a, ok := s.GraphCached(name); ok {
			total += a.Stats.CondBranches
		}
	}
	return total
}

// compareSuites runs the complete table+figure composition once per
// pipeline and reports wall clock and retained trace memory.
func compareSuites(clock obs.Clock, scale float64, workers int, m *obs.Metrics) (*SuiteComparison, error) {
	run := func(cfg harness.Config) (time.Duration, uint64, uint64, error) {
		s := harness.NewSuite(cfg)
		elapsed, err := timeRun(clock, func() error {
			return harness.RunAll(s, io.Discard, false)
		})
		if err != nil {
			return 0, 0, 0, err
		}
		return elapsed, s.RetainedTraceBytes(), streamBranches(s), nil
	}
	serialNs, recBytes, _, err := run(harness.Config{Scale: scale, Workers: 1, Metrics: m})
	if err != nil {
		return nil, err
	}
	fusedNs, fusedBytes, fusedBranches, err := run(harness.Config{Scale: scale, Workers: workers, Fused: true, Metrics: m})
	if err != nil {
		return nil, err
	}
	c := &SuiteComparison{
		Workers:          workers,
		SerialRecordNs:   serialNs.Nanoseconds(),
		ParallelFusedNs:  fusedNs.Nanoseconds(),
		RecordTraceBytes: recBytes,
		FusedTraceBytes:  fusedBytes,
	}
	if fusedNs > 0 {
		c.Speedup = float64(serialNs) / float64(fusedNs)
		c.FusedMBranchesPerS = float64(fusedBranches) / (float64(fusedNs.Nanoseconds()) / 1e9) / 1e6
	}
	return c, nil
}

// compare fails on any experiment whose ns/op regressed beyond
// tolerance relative to the baseline report. New experiments (absent
// from the baseline) pass; missing ones are reported.
func compare(baselinePath string, rep *Report, tolerance float64) error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("reading baseline: %w", err)
	}
	var base Report
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parsing baseline: %w", err)
	}
	if base.Scale != rep.Scale {
		fmt.Printf("baseline scale %v differs from run scale %v; comparing anyway\n", base.Scale, rep.Scale)
	}
	baseBy := make(map[string]ExperimentResult, len(base.Experiments))
	for _, e := range base.Experiments {
		baseBy[e.Name] = e
	}
	var failures []string
	for _, e := range rep.Experiments {
		b, ok := baseBy[e.Name]
		if !ok || b.NsPerOp <= 0 {
			continue
		}
		ratio := float64(e.NsPerOp) / float64(b.NsPerOp)
		status := "ok"
		if ratio > 1+tolerance {
			status = "REGRESSION"
			failures = append(failures,
				fmt.Sprintf("%s: %d ns/op vs baseline %d (%.2fx > %.2fx allowed)",
					e.Name, e.NsPerOp, b.NsPerOp, ratio, 1+tolerance))
		}
		fmt.Printf("compare %-8s %.2fx vs baseline (%s)\n", e.Name, ratio, status)
	}
	if len(failures) > 0 {
		return fmt.Errorf("%d benchmark regression(s):\n\t%s", len(failures), joinLines(failures))
	}
	return nil
}

func joinLines(lines []string) string {
	out := ""
	for i, l := range lines {
		if i > 0 {
			out += "\n\t"
		}
		out += l
	}
	return out
}

// Command bench measures the experiment harness and emits a
// machine-readable benchmark report (default BENCH_3.json) for
// regression tracking: per-experiment ns/op, allocs/op, bytes/op and
// approximate branch-stream throughput in Mbranches/s, a suite section
// comparing serial record-then-replay against the parallel fused
// pipeline (wall clock and retained trace memory), and a sharding
// section comparing the intra-benchmark hot paths at shards=1 vs
// shards=N (wall clock, shard-table memory).
//
// Usage:
//
//	bench [-scale 0.1] [-workers 8] [-shards n] [-o BENCH_3.json]
//	      [-baseline BENCH_3.json] [-tolerance 0.25] [-update]
//
// With -baseline it compares each experiment's ns/op against the
// committed baseline and exits nonzero on a regression beyond the
// tolerance. Baselines are machine-specific: regenerate with -update
// when the reference hardware changes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/profile"
	"repro/internal/workload"
)

// ExperimentResult is one benchmarked experiment.
type ExperimentResult struct {
	Name          string  `json:"name"`
	NsPerOp       int64   `json:"ns_per_op"`
	AllocsPerOp   int64   `json:"allocs_per_op"`
	BytesPerOp    int64   `json:"bytes_per_op"`
	MBranchesPerS float64 `json:"mbranches_per_s"`
}

// SuiteComparison contrasts the two harness pipelines over a full run
// (all tables and figures).
type SuiteComparison struct {
	Workers          int     `json:"workers"`
	SerialRecordNs   int64   `json:"serial_record_ns"`
	ParallelFusedNs  int64   `json:"parallel_fused_ns"`
	Speedup          float64 `json:"speedup"`
	RecordTraceBytes uint64  `json:"record_trace_bytes"`
	FusedTraceBytes  uint64  `json:"fused_trace_bytes"`
}

// ShardingComparison contrasts the intra-benchmark serial hot paths
// (shards=1, the exact pre-sharding code) against the sharded pipeline
// (shards=N): once over a full suite run, and once as a direct profile
// pass on one benchmark, where the shard tables' memory cost and the
// merged pair count are also recorded. Output is byte-identical either
// way; only time and memory differ.
type ShardingComparison struct {
	Shards           int     `json:"shards"`
	SuiteShards1Ns   int64   `json:"suite_shards1_ns"`
	SuiteShardedNs   int64   `json:"suite_sharded_ns"`
	SuiteSpeedup     float64 `json:"suite_speedup"`
	ProfileBenchmark string  `json:"profile_benchmark"`
	ProfileShards1Ns int64   `json:"profile_shards1_ns"`
	ProfileShardedNs int64   `json:"profile_sharded_ns"`
	ProfileSpeedup   float64 `json:"profile_speedup"`
	ShardTableBytes  uint64  `json:"shard_table_bytes"`
	MergedPairs      int     `json:"merged_pairs"`
}

// Report is the BENCH_3.json schema.
type Report struct {
	Scale       float64            `json:"scale"`
	GoMaxProcs  int                `json:"gomaxprocs"`
	Experiments []ExperimentResult `json:"experiments"`
	Suite       SuiteComparison    `json:"suite"`
	Sharding    ShardingComparison `json:"sharding"`
}

func main() {
	var (
		scale     = flag.Float64("scale", 0.1, "workload scale factor for the benchmarks")
		workers   = flag.Int("workers", 8, "worker count for the parallel fused comparison")
		shards    = flag.Int("shards", 0, "shard count for the sharding comparison (0 = GOMAXPROCS, floored at 2 so the comparison is real)")
		out       = flag.String("o", "BENCH_3.json", "write the benchmark report here")
		baseline  = flag.String("baseline", "", "compare against this baseline report")
		tolerance = flag.Float64("tolerance", 0.25, "allowed fractional ns/op regression vs the baseline")
		update    = flag.Bool("update", false, "overwrite the baseline with this run's report")
		metrics   = flag.Bool("metrics", false, "instrument the comparison runs and dump the metrics registry (text encoding) to stderr")
	)
	flag.Parse()
	if *shards <= 0 {
		*shards = runtime.GOMAXPROCS(0)
	}
	if *shards < 2 {
		*shards = 2
	}

	var reg *obs.Registry
	if *metrics {
		reg = obs.NewRegistry()
	}
	rep, err := measure(obs.SystemClock(), *scale, *workers, *shards, obs.New(reg))
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	if reg != nil {
		if err := obs.WriteText(os.Stderr, reg.Snapshot()); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)

	if *baseline != "" && !*update {
		if err := compare(*baseline, rep, *tolerance); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
	}
	if *update && *baseline != "" && *baseline != *out {
		if err := os.WriteFile(*baseline, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		fmt.Printf("updated baseline %s\n", *baseline)
	}
}

// experiment is one benchmarkable harness experiment.
type experiment struct {
	name string
	run  func(*harness.Suite) error
}

func experiments() []experiment {
	table := func(n int) func(*harness.Suite) error {
		return func(s *harness.Suite) error { return discardTable(s, n) }
	}
	figure := func(n int) func(*harness.Suite) error {
		return func(s *harness.Suite) error { return discardFigure(s, n) }
	}
	return []experiment{
		{"table1", table(1)},
		{"table2", table(2)},
		{"table3", table(3)},
		{"table4", table(4)},
		{"figure3", figure(3)},
		{"figure4", figure(4)},
	}
}

// Rendering goes to io.Discard: formatting is part of the experiment,
// terminal I/O is not.
func discardTable(s *harness.Suite, n int) error {
	return harness.RunTable(s, io.Discard, n, false)
}

func discardFigure(s *harness.Suite, n int) error {
	return harness.RunFigure(s, io.Discard, n, false)
}

// timeRun measures f's wall-clock duration on the injected clock — the
// single timing primitive every comparison below uses, so bench output
// is testable under a FakeClock (no ambient time.Now anywhere here).
func timeRun(clock obs.Clock, f func() error) (time.Duration, error) {
	start := clock.Now()
	if err := f(); err != nil {
		return 0, err
	}
	return clock.Now().Sub(start), nil
}

func measure(clock obs.Clock, scale float64, workers, shards int, m *obs.Metrics) (*Report, error) {
	rep := &Report{Scale: scale, GoMaxProcs: runtime.GOMAXPROCS(0)}

	for _, e := range experiments() {
		e := e
		var benchErr error
		var branchesPerOp uint64
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				// A fresh suite per iteration measures the experiment
				// cold: workload execution, filtering, profiling,
				// analysis, simulation and rendering.
				s := harness.NewSuite(harness.Config{Scale: scale, Fused: true})
				if err := e.run(s); err != nil {
					benchErr = err
					b.FailNow()
				}
				if i == 0 {
					branchesPerOp = streamBranches(s)
				}
			}
		})
		if benchErr != nil {
			return nil, fmt.Errorf("%s: %w", e.name, benchErr)
		}
		res := ExperimentResult{
			Name:        e.name,
			NsPerOp:     r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if r.NsPerOp() > 0 {
			res.MBranchesPerS = float64(branchesPerOp) / (float64(r.NsPerOp()) / 1e9) / 1e6
		}
		fmt.Printf("%-8s %12d ns/op %12d B/op %9d allocs/op %8.2f Mbranches/s\n",
			res.Name, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp, res.MBranchesPerS)
		rep.Experiments = append(rep.Experiments, res)
	}

	suite, err := compareSuites(clock, scale, workers, m)
	if err != nil {
		return nil, err
	}
	rep.Suite = *suite
	fmt.Printf("suite    serial/record %v, parallel(%d)/fused %v: %.2fx, trace bytes %d -> %d\n",
		time.Duration(suite.SerialRecordNs), suite.Workers, time.Duration(suite.ParallelFusedNs),
		suite.Speedup, suite.RecordTraceBytes, suite.FusedTraceBytes)

	sharding, err := compareSharding(clock, scale, shards, m)
	if err != nil {
		return nil, err
	}
	rep.Sharding = *sharding
	fmt.Printf("sharding suite shards=1 %v vs shards=%d %v: %.2fx; profile %s %v vs %v: %.2fx, shard tables %d B, %d pairs\n",
		time.Duration(sharding.SuiteShards1Ns), sharding.Shards, time.Duration(sharding.SuiteShardedNs), sharding.SuiteSpeedup,
		sharding.ProfileBenchmark, time.Duration(sharding.ProfileShards1Ns), time.Duration(sharding.ProfileShardedNs),
		sharding.ProfileSpeedup, sharding.ShardTableBytes, sharding.MergedPairs)
	return rep, nil
}

// compareSharding measures the intra-benchmark hot paths at shards=1 vs
// shards=N: the full table+figure composition (fused, one benchmark
// worker, so only intra-benchmark parallelism differs), and a direct
// unfiltered profile pass over the heaviest benchmark's branch stream,
// where the shard tables' memory cost is also read.
func compareSharding(clock obs.Clock, scale float64, shards int, m *obs.Metrics) (*ShardingComparison, error) {
	runSuite := func(profileShards int) (time.Duration, error) {
		s := harness.NewSuite(harness.Config{
			Scale: scale, Workers: 1, Fused: true, ProfileShards: profileShards, Metrics: m,
		})
		return timeRun(clock, func() error {
			return harness.RunAll(s, io.Discard, false)
		})
	}
	suite1, err := runSuite(1)
	if err != nil {
		return nil, err
	}
	suiteN, err := runSuite(shards)
	if err != nil {
		return nil, err
	}

	const profileBench = "gcc" // largest static branch set in the suite
	spec, err := workload.ByName(profileBench)
	if err != nil {
		return nil, err
	}
	runCfg := workload.RunConfig{Input: workload.InputRef, Scale: scale}
	runProfile := func(profileShards int) (time.Duration, *profile.Profiler, error) {
		prof := profile.NewProfiler(profileBench, workload.InputRef.Name,
			profile.WithShards(profileShards), profile.WithMetrics(m.Profile()))
		elapsed, err := timeRun(clock, func() error {
			if _, err := spec.RunInto(runCfg, prof); err != nil {
				return err
			}
			prof.Profile().Release()
			return nil
		})
		if err != nil {
			return 0, nil, err
		}
		return elapsed, prof, nil
	}
	prof1, _, err := runProfile(1)
	if err != nil {
		return nil, err
	}
	profN, shardedProf, err := runProfile(shards)
	if err != nil {
		return nil, err
	}
	merged := shardedProf.Profile()
	pairs := merged.Pairs.Len()
	merged.Release()

	c := &ShardingComparison{
		Shards:           shards,
		SuiteShards1Ns:   suite1.Nanoseconds(),
		SuiteShardedNs:   suiteN.Nanoseconds(),
		ProfileBenchmark: profileBench,
		ProfileShards1Ns: prof1.Nanoseconds(),
		ProfileShardedNs: profN.Nanoseconds(),
		ShardTableBytes:  shardedProf.ShardTableBytes(),
		MergedPairs:      pairs,
	}
	if suiteN > 0 {
		c.SuiteSpeedup = float64(suite1) / float64(suiteN)
	}
	if profN > 0 {
		c.ProfileSpeedup = float64(prof1) / float64(profN)
	}
	return c, nil
}

// streamBranches estimates the branch events that flowed through the
// experiment's artifact pipeline: every cached benchmark contributed
// its full stream (execution) plus its filtered stream (profiling).
// It is a throughput denominator, not an exact event count — figure
// re-executions and replays are not included. See README "Performance".
func streamBranches(s *harness.Suite) uint64 {
	var total uint64
	for _, name := range workload.Names() {
		for _, input := range []workload.InputSet{workload.InputRef, workload.InputA, workload.InputB} {
			a, ok := s.Cached(name, input)
			if !ok {
				continue
			}
			total += a.Filter.DynamicTotal + a.Filter.DynamicKept
		}
	}
	return total
}

// compareSuites runs the complete table+figure composition once per
// pipeline and reports wall clock and retained trace memory.
func compareSuites(clock obs.Clock, scale float64, workers int, m *obs.Metrics) (*SuiteComparison, error) {
	run := func(cfg harness.Config) (time.Duration, uint64, error) {
		s := harness.NewSuite(cfg)
		elapsed, err := timeRun(clock, func() error {
			return harness.RunAll(s, io.Discard, false)
		})
		if err != nil {
			return 0, 0, err
		}
		return elapsed, s.RetainedTraceBytes(), nil
	}
	serialNs, recBytes, err := run(harness.Config{Scale: scale, Workers: 1, Metrics: m})
	if err != nil {
		return nil, err
	}
	fusedNs, fusedBytes, err := run(harness.Config{Scale: scale, Workers: workers, Fused: true, Metrics: m})
	if err != nil {
		return nil, err
	}
	c := &SuiteComparison{
		Workers:          workers,
		SerialRecordNs:   serialNs.Nanoseconds(),
		ParallelFusedNs:  fusedNs.Nanoseconds(),
		RecordTraceBytes: recBytes,
		FusedTraceBytes:  fusedBytes,
	}
	if fusedNs > 0 {
		c.Speedup = float64(serialNs) / float64(fusedNs)
	}
	return c, nil
}

// compare fails on any experiment whose ns/op regressed beyond
// tolerance relative to the baseline report. New experiments (absent
// from the baseline) pass; missing ones are reported.
func compare(baselinePath string, rep *Report, tolerance float64) error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("reading baseline: %w", err)
	}
	var base Report
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parsing baseline: %w", err)
	}
	if base.Scale != rep.Scale {
		fmt.Printf("baseline scale %v differs from run scale %v; comparing anyway\n", base.Scale, rep.Scale)
	}
	baseBy := make(map[string]ExperimentResult, len(base.Experiments))
	for _, e := range base.Experiments {
		baseBy[e.Name] = e
	}
	var failures []string
	for _, e := range rep.Experiments {
		b, ok := baseBy[e.Name]
		if !ok || b.NsPerOp <= 0 {
			continue
		}
		ratio := float64(e.NsPerOp) / float64(b.NsPerOp)
		status := "ok"
		if ratio > 1+tolerance {
			status = "REGRESSION"
			failures = append(failures,
				fmt.Sprintf("%s: %d ns/op vs baseline %d (%.2fx > %.2fx allowed)",
					e.Name, e.NsPerOp, b.NsPerOp, ratio, 1+tolerance))
		}
		fmt.Printf("compare %-8s %.2fx vs baseline (%s)\n", e.Name, ratio, status)
	}
	if len(failures) > 0 {
		return fmt.Errorf("%d benchmark regression(s):\n\t%s", len(failures), joinLines(failures))
	}
	return nil
}

func joinLines(lines []string) string {
	out := ""
	for i, l := range lines {
		if i > 0 {
			out += "\n\t"
		}
		out += l
	}
	return out
}

// Command wsanalyzed is the long-running service mode of the working-set
// analysis pipeline: it accepts analysis jobs over HTTP, runs them on
// the instrumented sharded harness with bounded concurrency, and
// exposes the observability registry.
//
// Usage:
//
//	wsanalyzed [-addr host:port] [-max-jobs n]
//
// Endpoints:
//
//	POST /analyze        submit a job ({"kind":"table","table":2,...});
//	                     returns {"id":"job-1","status":"queued"}
//	GET  /jobs           list jobs in submission order
//	GET  /jobs/{id}      job state; "done" carries the rendered result
//	GET  /metrics        Prometheus exposition (?format=text|json for
//	                     the plain-text or JSON encodings)
//	GET  /healthz        liveness + draining state
//	GET  /debug/pprof/   net/http/pprof
//
// On SIGINT/SIGTERM the server drains: new submissions get 503,
// in-flight jobs run to completion, then the listener shuts down.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"

	"repro/internal/obs"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:8090", "listen address")
		maxJobs = flag.Int("max-jobs", runtime.GOMAXPROCS(0), "maximum concurrently executing jobs")
	)
	flag.Parse()

	if err := serve(*addr, *maxJobs); err != nil {
		fmt.Fprintln(os.Stderr, "wsanalyzed:", err)
		os.Exit(1)
	}
}

func serve(addr string, maxJobs int) error {
	s := newServer(obs.NewRegistry(), maxJobs)
	srv := &http.Server{Addr: addr, Handler: s.handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "wsanalyzed: listening on %s (max %d concurrent jobs)\n", addr, maxJobs)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err // listener failed before any signal
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "wsanalyzed: draining (in-flight jobs run to completion)")
	s.beginDrain()
	s.waitIdle()
	if err := srv.Shutdown(context.Background()); err != nil {
		return err
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(os.Stderr, "wsanalyzed: shut down cleanly")
	return nil
}

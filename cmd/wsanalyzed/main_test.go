package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files")

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s (regenerate with -update if intended)\n--- want ---\n%s\n--- got ---\n%s",
			path, want, got)
	}
}

// newTestService spins up the full HTTP stack around a server — the
// black-box entry point every test below talks to.
func newTestService(t *testing.T, s *server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(s.handler())
	t.Cleanup(ts.Close)
	return ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func getJSON(t *testing.T, url string, into any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		t.Fatal(err)
	}
	if into != nil {
		if err := json.Unmarshal(data, into); err != nil {
			t.Fatalf("decoding %s: %v\nbody: %s", url, err, data)
		}
	}
	return resp
}

// submit posts an analyze request and returns the accepted job id.
func submit(t *testing.T, ts *httptest.Server, req analyzeRequest) string {
	t.Helper()
	resp, body := postJSON(t, ts.URL+"/analyze", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d, body %s", resp.StatusCode, body)
	}
	var acc struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &acc); err != nil {
		t.Fatal(err)
	}
	if acc.ID == "" {
		t.Fatalf("submit: empty job id in %s", body)
	}
	return acc.ID
}

// poll waits for the job to leave queued/running and returns its final
// state.
func poll(t *testing.T, ts *httptest.Server, id string) job {
	t.Helper()
	deadline := 600 // × 100ms = 60s
	for i := 0; i < deadline; i++ {
		var j job
		resp := getJSON(t, ts.URL+"/jobs/"+id, &j)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll %s: status %d", id, resp.StatusCode)
		}
		if j.Status == "done" || j.Status == "failed" {
			return j
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return job{}
}

// TestRoundTripMatchesHarness is the service's core acceptance: a full
// submit→poll→result round trip through HTTP must return bytes
// identical to calling the harness directly with the same
// configuration.
func TestRoundTripMatchesHarness(t *testing.T) {
	ts := newTestService(t, newServer(obs.NewRegistry(), 2))
	req := analyzeRequest{Kind: "all", Scale: 0.05}
	id := submit(t, ts, req)
	j := poll(t, ts, id)
	if j.Status != "done" {
		t.Fatalf("job failed: %s", j.Error)
	}

	direct := harness.NewSuite(harness.Config{Scale: 0.05, Fused: true})
	var want bytes.Buffer
	if err := harness.RunAll(direct, &want, false); err != nil {
		t.Fatal(err)
	}
	if j.Result != want.String() {
		t.Errorf("service result differs from direct harness run (%d vs %d bytes)",
			len(j.Result), want.Len())
	}
}

// TestStaticMode covers the profile-free experiment end to end through
// the service, submitted via the ?mode=static query alias, and checks
// the result against a direct harness run.
func TestStaticMode(t *testing.T) {
	ts := newTestService(t, newServer(obs.NewRegistry(), 2))

	resp, body := postJSON(t, ts.URL+"/analyze?mode=static", analyzeRequest{Scale: 0.05})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d, body %s", resp.StatusCode, body)
	}
	var acc struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &acc); err != nil {
		t.Fatal(err)
	}
	j := poll(t, ts, acc.ID)
	if j.Status != "done" {
		t.Fatalf("job failed: %s", j.Error)
	}
	if j.Req.Kind != "static" {
		t.Errorf("recorded kind = %q, want static (the ?mode alias must stick)", j.Req.Kind)
	}

	direct := harness.NewSuite(harness.Config{Scale: 0.05, Fused: true})
	var want bytes.Buffer
	if err := harness.RunStatic(direct, &want, false); err != nil {
		t.Fatal(err)
	}
	if j.Result != want.String() {
		t.Errorf("service result differs from direct harness run (%d vs %d bytes)",
			len(j.Result), want.Len())
	}

	// A body kind conflicting with the query alias is rejected; so is an
	// unknown mode.
	if resp, _ := postJSON(t, ts.URL+"/analyze?mode=static", analyzeRequest{Kind: "all"}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("conflicting kind/mode: status %d, want 400", resp.StatusCode)
	}
	if resp, _ := postJSON(t, ts.URL+"/analyze?mode=bogus", analyzeRequest{}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown mode: status %d, want 400", resp.StatusCode)
	}
}

// TestZooMode covers the predictor-zoo experiment end to end through
// the service, submitted via the ?mode=zoo and ?predictor= query
// aliases, and checks the result against a direct harness run.
func TestZooMode(t *testing.T) {
	ts := newTestService(t, newServer(obs.NewRegistry(), 2))

	resp, body := postJSON(t, ts.URL+"/analyze?mode=zoo&predictor=gshare,perceptron", analyzeRequest{Scale: 0.05})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d, body %s", resp.StatusCode, body)
	}
	var acc struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &acc); err != nil {
		t.Fatal(err)
	}
	j := poll(t, ts, acc.ID)
	if j.Status != "done" {
		t.Fatalf("job failed: %s", j.Error)
	}
	if j.Req.Kind != "zoo" || j.Req.Predictor != "gshare,perceptron" {
		t.Errorf("recorded request = kind %q predictor %q (the query aliases must stick)", j.Req.Kind, j.Req.Predictor)
	}

	direct := harness.NewSuite(harness.Config{Scale: 0.05, Fused: true})
	var want bytes.Buffer
	if err := harness.RunZoo(direct, &want, false, "gshare", "perceptron"); err != nil {
		t.Fatal(err)
	}
	if j.Result != want.String() {
		t.Errorf("service result differs from direct harness run (%d vs %d bytes)",
			len(j.Result), want.Len())
	}
	if !strings.Contains(j.Result, "[perceptron]") {
		t.Errorf("zoo result missing requested predictor section:\n%.500s", j.Result)
	}

	// Unknown predictors are rejected at validation, before any work, as
	// is a predictor selection on a non-zoo kind.
	if resp, _ := postJSON(t, ts.URL+"/analyze?mode=zoo&predictor=bogus", analyzeRequest{}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown predictor: status %d, want 400", resp.StatusCode)
	}
	if resp, _ := postJSON(t, ts.URL+"/analyze", analyzeRequest{Kind: "all", Predictor: "tage"}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("predictor on non-zoo kind: status %d, want 400", resp.StatusCode)
	}
	if resp, _ := postJSON(t, ts.URL+"/analyze?predictor=tage", analyzeRequest{Kind: "zoo", Predictor: "pag"}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("conflicting predictor/query: status %d, want 400", resp.StatusCode)
	}
}

// TestGraphCharactMode covers the graph-workload and characterization
// experiments end to end through the service, submitted via the ?mode=
// alias, and checks each result against a direct harness run.
func TestGraphCharactMode(t *testing.T) {
	ts := newTestService(t, newServer(obs.NewRegistry(), 2))

	resp, body := postJSON(t, ts.URL+"/analyze?mode=graphs&predictor=pag", analyzeRequest{Scale: 0.05})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit graphs: status %d, body %s", resp.StatusCode, body)
	}
	var acc struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &acc); err != nil {
		t.Fatal(err)
	}
	j := poll(t, ts, acc.ID)
	if j.Status != "done" {
		t.Fatalf("graphs job failed: %s", j.Error)
	}

	direct := harness.NewSuite(harness.Config{Scale: 0.05, Fused: true})
	var want bytes.Buffer
	if err := harness.RunGraphs(direct, &want, false, "pag"); err != nil {
		t.Fatal(err)
	}
	if j.Result != want.String() {
		t.Errorf("graphs result differs from direct harness run (%d vs %d bytes)",
			len(j.Result), want.Len())
	}
	if !strings.Contains(j.Result, "bfs-uniform") {
		t.Errorf("graphs result missing benchmark rows:\n%.500s", j.Result)
	}

	charID := submit(t, ts, analyzeRequest{Kind: "charact", Scale: 0.05})
	cj := poll(t, ts, charID)
	if cj.Status != "done" {
		t.Fatalf("charact job failed: %s", cj.Error)
	}
	want.Reset()
	if err := harness.RunCharact(harness.NewSuite(harness.Config{Scale: 0.05, Fused: true}), &want, false); err != nil {
		t.Fatal(err)
	}
	if cj.Result != want.String() {
		t.Errorf("charact result differs from direct harness run (%d vs %d bytes)",
			len(cj.Result), want.Len())
	}

	// A predictor selection on kind "charact" is rejected at validation.
	if resp, _ := postJSON(t, ts.URL+"/analyze", analyzeRequest{Kind: "charact", Predictor: "tage"}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("predictor on charact kind: status %d, want 400", resp.StatusCode)
	}
}

// TestConcurrentSubmissions floods the service with more jobs than its
// concurrency bound and checks every one completes correctly — CI runs
// this under -race, so the job table and counter synchronization are
// verified at the same time.
func TestConcurrentSubmissions(t *testing.T) {
	reg := obs.NewRegistry()
	srv := newServer(reg, 2)
	ts := newTestService(t, srv)

	const jobs = 6
	ids := make([]string, jobs)
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			ids[i] = submit(t, ts, analyzeRequest{Kind: "table", Table: 1, Scale: 0.02})
		}()
	}
	wg.Wait()

	var first string
	for i, id := range ids {
		j := poll(t, ts, id)
		if j.Status != "done" {
			t.Fatalf("job %s failed: %s", id, j.Error)
		}
		if i == 0 {
			first = j.Result
		} else if j.Result != first {
			t.Errorf("job %s result differs from job %s", id, ids[0])
		}
	}
	if got := reg.Counter("wsd_jobs_submitted_total").Value(); got != jobs {
		t.Errorf("submitted counter = %d, want %d", got, jobs)
	}
	if got := reg.Counter("wsd_jobs_completed_total").Value(); got != jobs {
		t.Errorf("completed counter = %d, want %d", got, jobs)
	}
	if got := reg.Gauge("wsd_jobs_running").Value(); got != 0 {
		t.Errorf("running gauge = %d after quiescence, want 0", got)
	}
	if got := reg.Gauge("wsd_jobs_queued").Value(); got != 0 {
		t.Errorf("queued gauge = %d after quiescence, want 0", got)
	}
}

// TestGracefulShutdown drives the drain protocol: with a job held
// in-flight by the test seam, beginDrain must reject new submissions
// with 503 while letting the in-flight job run to completion.
func TestGracefulShutdown(t *testing.T) {
	reg := obs.NewRegistry()
	srv := newServer(reg, 1)
	started := make(chan string, 1)
	release := make(chan struct{})
	srv.startHook = func(id string) {
		started <- id
		<-release
	}
	ts := newTestService(t, srv)

	id := submit(t, ts, analyzeRequest{Kind: "table", Table: 1, Scale: 0.02})
	select {
	case <-started:
	case <-time.After(30 * time.Second):
		t.Fatal("job never started")
	}

	srv.beginDrain()

	var health struct {
		Draining bool `json:"draining"`
	}
	getJSON(t, ts.URL+"/healthz", &health)
	if !health.Draining {
		t.Error("healthz does not report draining")
	}

	resp, body := postJSON(t, ts.URL+"/analyze", analyzeRequest{Kind: "table", Table: 1})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit while draining: status %d, want 503 (body %s)", resp.StatusCode, body)
	}
	if got := reg.Counter("wsd_jobs_rejected_total").Value(); got != 1 {
		t.Errorf("rejected counter = %d, want 1", got)
	}

	close(release)
	srv.waitIdle()
	j := poll(t, ts, id)
	if j.Status != "done" {
		t.Errorf("in-flight job did not complete across drain: %s (%s)", j.Status, j.Error)
	}
}

// TestMetricsEndpointGolden locks down the Prometheus exposition after
// one deterministic job: frozen clock and zero memory source null the
// timing series, everything else is an exact property of the fixture
// workload.
func TestMetricsEndpointGolden(t *testing.T) {
	reg := obs.NewRegistry(
		obs.WithClock(obs.NewFakeClock(time.Unix(0, 0), 0)),
		obs.WithMemSource(func() uint64 { return 0 }),
	)
	srv := newServer(reg, 1)
	ts := newTestService(t, srv)

	id := submit(t, ts, analyzeRequest{Kind: "table", Table: 1, Scale: 0.02, Workers: 1, Shards: 1})
	if j := poll(t, ts, id); j.Status != "done" {
		t.Fatalf("job failed: %s", j.Error)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics content type = %q", ct)
	}
	checkGolden(t, "metrics.prom.golden", string(body))

	// The alternate encodings must serve and agree on a spot value.
	var doc struct {
		Counters map[string]uint64 `json:"counters"`
	}
	getJSON(t, ts.URL+"/metrics?format=json", &doc)
	want := fmt.Sprintf("wsd_jobs_completed_total %d", doc.Counters["wsd_jobs_completed_total"])
	if !strings.Contains(string(body), want) {
		t.Errorf("prom and json encodings disagree on %q", want)
	}
	if resp := getJSON(t, ts.URL+"/metrics?format=text", nil); resp.StatusCode != http.StatusOK {
		t.Errorf("text format: status %d", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/metrics?format=bogus", nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bogus format: status %d, want 400", resp.StatusCode)
	}
}

// TestValidation covers the request-rejection paths.
func TestValidation(t *testing.T) {
	ts := newTestService(t, newServer(obs.NewRegistry(), 1))

	cases := []analyzeRequest{
		{Kind: "bogus"},
		{Kind: "table", Table: 9},
		{Kind: "figure", Figure: 1},
	}
	for _, c := range cases {
		resp, body := postJSON(t, ts.URL+"/analyze", c)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%+v: status %d, want 400 (body %s)", c, resp.StatusCode, body)
		}
	}

	resp, err := http.Post(ts.URL+"/analyze", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	if cerr := resp.Body.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: status %d, want 400", resp.StatusCode)
	}

	if resp := getJSON(t, ts.URL+"/jobs/job-999", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", resp.StatusCode)
	}
}

// TestProgcheckKind covers the program-verification endpoint: a clean
// program is verified as a job and returns the report; a corrupt one is
// rejected at submit time with a structured 400 whose body carries the
// findings, and never reaches the job queue.
func TestProgcheckKind(t *testing.T) {
	ts := newTestService(t, newServer(obs.NewRegistry(), 1))

	const clean = `.name demo
	addi r1, zero, 8
L0:	addi r1, r1, -1
	bne r1, zero, L0
	halt
`
	id := submit(t, ts, analyzeRequest{Kind: "progcheck", Program: clean})
	j := poll(t, ts, id)
	if j.Status != "done" {
		t.Fatalf("progcheck job failed: %s", j.Error)
	}
	if !strings.Contains(j.Result, "branch sites") {
		t.Errorf("progcheck result missing summary line:\n%s", j.Result)
	}

	// A provably out-of-bounds store fails verification before enqueue:
	// the 400 body is structured {error, findings} with the error
	// finding present, and no job is created for it.
	const oob = `.name bad
	addi r1, zero, 1
	lui r2, 1
	st r1, 0(r2)
	halt
`
	resp, body := postJSON(t, ts.URL+"/analyze", analyzeRequest{Kind: "progcheck", Program: oob})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("corrupt program: status %d, want 400 (body %s)", resp.StatusCode, body)
	}
	var reject errorBody
	if err := json.Unmarshal(body, &reject); err != nil {
		t.Fatalf("decoding rejection: %v\nbody: %s", err, body)
	}
	if !strings.Contains(reject.Error, "rejected") {
		t.Errorf("rejection error = %q, want a rejection message", reject.Error)
	}
	errors := 0
	for _, f := range reject.Findings {
		if f.Severity == "error" {
			errors++
		}
	}
	if errors == 0 {
		t.Errorf("rejection body carries no error findings: %s", body)
	}

	var list struct {
		Jobs []struct {
			Kind string `json:"kind"`
		} `json:"jobs"`
	}
	getJSON(t, ts.URL+"/jobs", &list)
	if len(list.Jobs) != 1 {
		t.Errorf("rejected program reached the job queue: %+v", list.Jobs)
	}

	// Unparseable source, a missing program, and a program on a
	// non-progcheck kind are all structured 400s.
	for name, req := range map[string]analyzeRequest{
		"parse error":            {Kind: "progcheck", Program: "bogus instruction"},
		"missing program":        {Kind: "progcheck"},
		"program on wrong kind":  {Kind: "all", Program: clean},
		"predictor on progcheck": {Kind: "progcheck", Program: clean, Predictor: "pag"},
	} {
		resp, body := postJSON(t, ts.URL+"/analyze", req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (body %s)", name, resp.StatusCode, body)
			continue
		}
		var eb errorBody
		if err := json.Unmarshal(body, &eb); err != nil || eb.Error == "" {
			t.Errorf("%s: 400 body not structured {error}: %s", name, body)
		}
	}
}

// TestProgCheckConfig covers the harness verification gate through the
// service: a job with progcheck on must return bytes identical to a
// direct harness run under the same config — the gate verifies every
// compiled program without perturbing the rendered experiment.
func TestProgCheckConfig(t *testing.T) {
	ts := newTestService(t, newServer(obs.NewRegistry(), 1))
	id := submit(t, ts, analyzeRequest{Kind: "table", Table: 1, Scale: 0.02, ProgCheck: true})
	j := poll(t, ts, id)
	if j.Status != "done" {
		t.Fatalf("job failed: %s", j.Error)
	}

	direct := harness.NewSuite(harness.Config{Scale: 0.02, Fused: true, ProgCheck: true})
	var want bytes.Buffer
	if err := harness.RunTable(direct, &want, 1, false); err != nil {
		t.Fatal(err)
	}
	if j.Result != want.String() {
		t.Errorf("service result differs from direct harness run (%d vs %d bytes)",
			len(j.Result), want.Len())
	}
}

// TestJobsListing checks /jobs reports submission order and statuses.
func TestJobsListing(t *testing.T) {
	ts := newTestService(t, newServer(obs.NewRegistry(), 1))
	a := submit(t, ts, analyzeRequest{Kind: "table", Table: 1, Scale: 0.02})
	b := submit(t, ts, analyzeRequest{Kind: "table", Table: 2, Scale: 0.02})
	poll(t, ts, a)
	poll(t, ts, b)

	var list struct {
		Jobs []struct {
			ID     string `json:"id"`
			Status string `json:"status"`
			Kind   string `json:"kind"`
		} `json:"jobs"`
	}
	getJSON(t, ts.URL+"/jobs", &list)
	if len(list.Jobs) != 2 {
		t.Fatalf("got %d jobs, want 2", len(list.Jobs))
	}
	if list.Jobs[0].ID != a || list.Jobs[1].ID != b {
		t.Errorf("jobs not in submission order: %+v", list.Jobs)
	}
	for _, j := range list.Jobs {
		if j.Status != "done" {
			t.Errorf("job %s status %q, want done", j.ID, j.Status)
		}
	}
}

package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync"

	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/predict"
	"repro/internal/progcheck"
	"repro/internal/program"
)

// analyzeRequest is the POST /analyze body: which experiment to run and
// the harness configuration to run it under. Zero values select the
// same defaults the cmd/tables CLI uses, so an empty request reproduces
// `tables` exactly.
type analyzeRequest struct {
	// Kind selects the experiment: "all" (default), "table", "figure",
	// "ablations", "extras", "static" (the profile-free
	// static-vs-profiled comparison), "zoo" (the predictor zoo:
	// allocated vs conventional indexing for PAg, gshare, TAGE, and the
	// hashed perceptron), "graphs" (the graph workloads: branchy vs
	// branch-avoiding BFS/CC/triangle kernels under the zoo), or
	// "charact" (the branch predictability characterization: bias,
	// entropy, history sensitivity), or "progcheck" (run the static
	// program verifier over the assembly source in Program). The query
	// parameter ?mode= is an alias for Kind, so `POST
	// /analyze?mode=static` with an empty body works too.
	Kind string `json:"kind"`
	// Table (1-4) and Figure (3-4) select the numbered experiment for
	// kind "table" / "figure".
	Table  int `json:"table,omitempty"`
	Figure int `json:"figure,omitempty"`
	// Predictor restricts kind "zoo" or "graphs" to a comma-separated
	// subset of the zoo members (pag, gshare, tage, perceptron); empty
	// runs them all. The query parameter ?predictor= is an alias,
	// mirroring ?mode=.
	Predictor string `json:"predictor,omitempty"`
	// Program is the assembly source for kind "progcheck". It is parsed
	// and verified before the job enqueues: a program with failing
	// (error or warn) findings never reaches the job queue — the submit
	// gets a 400 whose body carries the findings.
	Program string `json:"program,omitempty"`
	// ProgCheck turns on the harness verification gate
	// (harness.Config.ProgCheck) for the experiment kinds: every
	// compiled workload program is verified before it runs, and
	// error-severity findings fail the job.
	ProgCheck bool `json:"progcheck,omitempty"`

	Scale        float64 `json:"scale,omitempty"`
	Threshold    uint64  `json:"threshold,omitempty"`
	CliqueBudget int     `json:"clique_budget,omitempty"`
	Workers      int     `json:"workers,omitempty"`
	Shards       int     `json:"shards,omitempty"`
	// Fused defaults to true (the CLI default) when omitted.
	Fused    *bool `json:"fused,omitempty"`
	Markdown bool  `json:"markdown,omitempty"`
	Check    bool  `json:"check,omitempty"`
}

func (r *analyzeRequest) validate() error {
	switch r.Kind {
	case "", "all", "ablations", "extras", "static":
	case "table":
		if r.Table < 1 || r.Table > 4 {
			return fmt.Errorf("kind %q needs table 1-4, got %d", r.Kind, r.Table)
		}
	case "figure":
		if r.Figure != 3 && r.Figure != 4 {
			return fmt.Errorf("kind %q needs figure 3 or 4, got %d", r.Kind, r.Figure)
		}
	case "zoo", "graphs":
		for _, k := range splitPredictorKinds(r.Predictor) {
			if !predict.ValidZooKind(k) {
				return fmt.Errorf("kind %q: unknown predictor %q (have %v)", r.Kind, k, predict.ZooKinds())
			}
		}
	case "charact":
	case "progcheck":
		if strings.TrimSpace(r.Program) == "" {
			return fmt.Errorf("kind %q needs assembly source in \"program\"", r.Kind)
		}
	default:
		return fmt.Errorf("unknown kind %q (have all, table, figure, ablations, extras, static, zoo, graphs, charact, progcheck)", r.Kind)
	}
	if r.Predictor != "" && r.Kind != "zoo" && r.Kind != "graphs" {
		return fmt.Errorf("predictor %q only applies to kinds \"zoo\" and \"graphs\", not %q", r.Predictor, r.Kind)
	}
	if r.Program != "" && r.Kind != "progcheck" {
		return fmt.Errorf("program source only applies to kind \"progcheck\", not %q", r.Kind)
	}
	return nil
}

// vetProgram parses and verifies the submitted assembly before the job
// enqueues, so a corrupt program never reaches the job queue. A parse
// failure or any failing (error or warn) finding rejects the program;
// the returned findings go into the 400 body.
func (r *analyzeRequest) vetProgram() ([]progcheck.Finding, error) {
	p, err := program.ParseString(r.Program)
	if err != nil {
		return nil, err
	}
	rep := progcheck.Check(p)
	if failing := progcheck.Failing(rep.Findings); len(failing) > 0 {
		return rep.Findings, fmt.Errorf("program %q rejected: %d findings fail verification", p.Name, len(failing))
	}
	return nil, nil
}

// splitPredictorKinds parses the comma-separated predictor selection;
// empty input yields nil, which RunZoo reads as "the whole zoo".
func splitPredictorKinds(s string) []string {
	if s == "" {
		return nil
	}
	var kinds []string
	for _, k := range strings.Split(s, ",") {
		if k = strings.TrimSpace(k); k != "" {
			kinds = append(kinds, k)
		}
	}
	return kinds
}

// executeJob runs one analysis request on a fresh Suite and returns the
// rendered output — the same bytes the corresponding harness.Run* call
// writes, which the round-trip test asserts.
func executeJob(req analyzeRequest, m *obs.Metrics) (string, error) {
	if req.Kind == "progcheck" {
		return runProgcheckJob(req.Program)
	}
	fused := true
	if req.Fused != nil {
		fused = *req.Fused
	}
	suite := harness.NewSuite(harness.Config{
		Scale:         req.Scale,
		Threshold:     req.Threshold,
		CliqueBudget:  req.CliqueBudget,
		Check:         req.Check,
		Workers:       req.Workers,
		ProfileShards: req.Shards,
		Fused:         fused,
		ProgCheck:     req.ProgCheck,
		Metrics:       m,
	})
	var buf bytes.Buffer
	var err error
	switch req.Kind {
	case "", "all":
		err = harness.RunAll(suite, &buf, req.Markdown)
	case "table":
		err = harness.RunTable(suite, &buf, req.Table, req.Markdown)
	case "figure":
		err = harness.RunFigure(suite, &buf, req.Figure, req.Markdown)
	case "ablations":
		err = harness.RunAblations(suite, &buf, req.Markdown)
	case "extras":
		err = harness.RunExtras(suite, &buf, req.Markdown)
	case "static":
		err = harness.RunStatic(suite, &buf, req.Markdown)
	case "zoo":
		err = harness.RunZoo(suite, &buf, req.Markdown, splitPredictorKinds(req.Predictor)...)
	case "graphs":
		err = harness.RunGraphs(suite, &buf, req.Markdown, splitPredictorKinds(req.Predictor)...)
	case "charact":
		err = harness.RunCharact(suite, &buf, req.Markdown)
	default:
		err = fmt.Errorf("unknown kind %q", req.Kind)
	}
	if err != nil {
		return "", err
	}
	return buf.String(), nil
}

// runProgcheckJob renders the verifier report for an already-vetted
// program: one line per finding (only advisory findings survive the
// submit gate) and the cmd/progcheck-style summary line.
func runProgcheckJob(src string) (string, error) {
	p, err := program.ParseString(src)
	if err != nil {
		return "", err
	}
	r := progcheck.Check(p)
	var b bytes.Buffer
	counts := map[progcheck.Severity]int{}
	for _, f := range r.Findings {
		counts[f.Severity]++
		fmt.Fprintf(&b, "%s: %s\n", p.Name, f)
	}
	s := r.Summary()
	fmt.Fprintf(&b, "%s: %d findings (%d error, %d warn, %d info); %d branch sites: %d latch, %d exit, %d guard, %d resolved, %d dead, %d data-dependent\n",
		p.Name, len(r.Findings), counts[progcheck.SevError], counts[progcheck.SevWarn], counts[progcheck.SevInfo],
		s.Sites, s.Latch, s.Exit, s.Guard, s.Resolved, s.Dead, s.Data)
	return b.String(), nil
}

// job is one submitted analysis. Fields past the ID are guarded by the
// owning server's mutex.
type job struct {
	ID     string         `json:"id"`
	Status string         `json:"status"` // queued, running, done, failed
	Req    analyzeRequest `json:"request"`
	Result string         `json:"result,omitempty"`
	Error  string         `json:"error,omitempty"`
}

// server is the wsanalyzed HTTP service: it accepts analysis jobs, runs
// them on the instrumented harness with bounded concurrency, and serves
// job state plus the metrics registry.
type server struct {
	reg     *obs.Registry
	metrics *obs.Metrics
	sem     chan struct{} // bounds concurrently executing jobs

	mu       sync.Mutex
	draining bool
	jobs     map[string]*job
	order    []string // submission order, for deterministic listings
	nextID   int
	wg       sync.WaitGroup // tracks submitted-but-unfinished jobs

	// startHook, when non-nil, runs in the job goroutine after the job
	// enters "running" and before execution — a test seam that lets the
	// shutdown test hold a job in flight.
	startHook func(id string)

	submitted *obs.Counter
	completed *obs.Counter
	failed    *obs.Counter
	rejected  *obs.Counter
	running   *obs.Gauge
	queued    *obs.Gauge
}

// newServer builds a server around reg running at most maxConcurrent
// jobs at once (minimum 1).
func newServer(reg *obs.Registry, maxConcurrent int) *server {
	if maxConcurrent < 1 {
		maxConcurrent = 1
	}
	return &server{
		reg:       reg,
		metrics:   obs.New(reg),
		sem:       make(chan struct{}, maxConcurrent),
		jobs:      make(map[string]*job),
		submitted: reg.Counter("wsd_jobs_submitted_total"),
		completed: reg.Counter("wsd_jobs_completed_total"),
		failed:    reg.Counter("wsd_jobs_failed_total"),
		rejected:  reg.Counter("wsd_jobs_rejected_total"),
		running:   reg.Gauge("wsd_jobs_running"),
		queued:    reg.Gauge("wsd_jobs_queued"),
	}
}

// handler builds the service mux.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /analyze", s.handleAnalyze)
	mux.HandleFunc("GET /jobs", s.handleJobs)
	mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// beginDrain stops accepting new jobs. It does not wait; pair with
// waitIdle.
func (s *server) beginDrain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
}

// waitIdle blocks until every accepted job has finished.
func (s *server) waitIdle() { s.wg.Wait() }

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// errorBody is the structured rejection: every 400 carries the error
// text, and program rejections additionally carry the verifier
// findings that failed the submission.
type errorBody struct {
	Error    string              `json:"error"`
	Findings []progcheck.Finding `json:"findings,omitempty"`
}

func (s *server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	var req analyzeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil && err != io.EOF {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request body: " + err.Error()})
		return
	}
	// ?mode= is a body-free alias for Kind (e.g. POST /analyze?mode=static).
	if mode := r.URL.Query().Get("mode"); mode != "" {
		if req.Kind != "" && req.Kind != mode {
			writeJSON(w, http.StatusBadRequest, errorBody{
				Error: fmt.Sprintf("kind %q in body conflicts with ?mode=%s", req.Kind, mode)})
			return
		}
		req.Kind = mode
	}
	// ?predictor= is the matching alias for the zoo's kind selection
	// (e.g. POST /analyze?mode=zoo&predictor=tage,perceptron).
	if sel := r.URL.Query().Get("predictor"); sel != "" {
		if req.Predictor != "" && req.Predictor != sel {
			writeJSON(w, http.StatusBadRequest, errorBody{
				Error: fmt.Sprintf("predictor %q in body conflicts with ?predictor=%s", req.Predictor, sel)})
			return
		}
		req.Predictor = sel
	}
	if err := req.validate(); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	if req.Kind == "progcheck" {
		if findings, err := req.vetProgram(); err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error(), Findings: findings})
			return
		}
	}

	// The draining check, the job registration, and the WaitGroup add
	// happen under one lock so a drainer that has observed "draining set"
	// can rely on wg covering every accepted job.
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.rejected.Inc()
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "server is draining; not accepting jobs"})
		return
	}
	s.nextID++
	j := &job{ID: fmt.Sprintf("job-%d", s.nextID), Status: "queued", Req: req}
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	s.wg.Add(1)
	s.mu.Unlock()

	s.submitted.Inc()
	s.queued.Add(1)
	go s.runJob(j)

	writeJSON(w, http.StatusAccepted, struct {
		ID     string `json:"id"`
		Status string `json:"status"`
	}{j.ID, "queued"})
}

func (s *server) runJob(j *job) {
	defer s.wg.Done()
	s.sem <- struct{}{}
	defer func() { <-s.sem }()
	s.queued.Add(-1)
	s.running.Add(1)
	defer s.running.Add(-1)

	s.mu.Lock()
	j.Status = "running"
	req := j.Req
	s.mu.Unlock()
	if s.startHook != nil {
		s.startHook(j.ID)
	}

	out, err := executeJob(req, s.metrics)

	s.mu.Lock()
	if err != nil {
		j.Status = "failed"
		j.Error = err.Error()
	} else {
		j.Status = "done"
		j.Result = out
	}
	s.mu.Unlock()
	if err != nil {
		s.failed.Inc()
	} else {
		s.completed.Inc()
	}
}

func (s *server) handleJobs(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	type summary struct {
		ID     string `json:"id"`
		Status string `json:"status"`
		Kind   string `json:"kind"`
	}
	list := make([]summary, 0, len(s.order))
	for _, id := range s.order {
		j := s.jobs[id]
		kind := j.Req.Kind
		if kind == "" {
			kind = "all"
		}
		list = append(list, summary{j.ID, j.Status, kind})
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, struct {
		Jobs []summary `json:"jobs"`
	}{list})
}

func (s *server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j, ok := s.jobs[id]
	var cp job
	if ok {
		cp = *j
	}
	s.mu.Unlock()
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such job " + id})
		return
	}
	writeJSON(w, http.StatusOK, cp)
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.reg.Snapshot()
	switch r.URL.Query().Get("format") {
	case "", "prom":
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = obs.WriteProm(w, snap)
	case "text":
		w.Header().Set("Content-Type", "text/plain")
		_ = obs.WriteText(w, snap)
	case "json":
		w.Header().Set("Content-Type", "application/json")
		_ = obs.WriteJSON(w, snap)
	default:
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "unknown format (have prom, text, json)"})
	}
}

func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, struct {
		Status   string `json:"status"`
		Draining bool   `json:"draining"`
	}{"ok", draining})
}

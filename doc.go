// Package repro reproduces "Analyzing the Working Set Characteristics of
// Branch Execution" (Sangwook P. Kim and Gary S. Tyson, MICRO 1998) as a
// complete, self-contained Go system.
//
// The paper introduces branch working set analysis — a profile-based
// technique that time-stamps conditional branch executions, summarizes
// their interleaving as a weighted branch conflict graph, and reads the
// graph's completely-connected subgraphs as the program's branch working
// sets — and applies it to branch allocation: compiler-directed
// assignment of branches to Branch History Table entries by graph
// coloring, which removes most BHT interference in a PAg two-level
// predictor.
//
// This module contains everything needed to regenerate the paper's
// evaluation (Tables 1-4 and Figures 3-4):
//
//   - internal/isa, internal/program, internal/vm: a small RISC machine
//     and interpreter standing in for SimpleScalar;
//   - internal/workload: a 13-benchmark synthetic suite whose
//     control-flow shape is tuned to the paper's SPECint95/UNIX
//     measurements;
//   - internal/trace, internal/profile: branch traces and the
//     interleave profiler;
//   - internal/graph, internal/classify, internal/core: the conflict
//     graph, taken-rate classification, working-set analysis and the
//     branch allocator (the paper's contribution);
//   - internal/predict: PAg and baseline predictors with pluggable BHT
//     indexing;
//   - internal/harness: the experiment definitions;
//   - cmd/tables, cmd/wsanalyze, cmd/allocate, cmd/branchsim: CLIs;
//   - examples/: runnable walkthroughs of the public API.
//
// This package is a thin facade over those pieces for programmatic use;
// see api.go. Start with README.md, DESIGN.md (system inventory and
// per-experiment index) and EXPERIMENTS.md (paper-vs-measured results).
package repro

// Quickstart: the full pipeline of the paper on one benchmark in ~40
// lines — run a workload, profile branch interleaving, extract the
// branch working sets, build a branch allocation, and compare predictor
// accuracy with and without it.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// 1. Execute a benchmark and record its conditional-branch trace.
	tr, err := repro.Run("compress", repro.RunConfig{Scale: 0.5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ran %s: %d dynamic conditional branches\n", tr.Benchmark, len(tr.Events))

	// 2. Profile: time-stamp interleaving -> pairwise conflict counts.
	prof := repro.ProfileTrace(tr, 0)
	fmt.Printf("profiled %d static branches, %d interleaving pairs\n",
		prof.NumBranches(), prof.Pairs.Len())

	// 3. Branch working set analysis (paper Section 4).
	analysis, err := repro.Analyze(prof, repro.AnalysisConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("working sets: %d, average size %.0f static / %.0f dynamic, largest %d\n",
		analysis.NumSets(), analysis.AvgStaticSize(), analysis.AvgDynamicSize(), analysis.MaxSetSize())

	// 4. Branch allocation (paper Section 5): color the conflict graph
	//    into a 1024-entry BHT.
	alloc, err := repro.Allocate(prof, repro.AllocationConfig{TableSize: 1024})
	if err != nil {
		log.Fatal(err)
	}
	occupied, maxLoad := alloc.Map.LoadStats()
	fmt.Printf("allocation: %d branches over %d entries (max %d per entry), conflict cost %d\n",
		alloc.Map.Allocated(), occupied, maxLoad, alloc.ConflictCost)

	// 5. Compare predictors on the same stream: conventional PC-indexed
	//    PAg vs. allocation-indexed PAg vs. interference-free.
	conv, err := repro.SimulatePAg(tr, 1024, 4096, nil)
	if err != nil {
		log.Fatal(err)
	}
	allocated, err := repro.SimulatePAg(tr, 1024, 4096, alloc)
	if err != nil {
		log.Fatal(err)
	}
	ifree, err := repro.SimulateInterferenceFree(tr, 4096)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Printf("conventional PAg-1024:   %.4f mispredict rate\n", conv.Rate())
	fmt.Printf("allocated PAg-1024:      %.4f\n", allocated.Rate())
	fmt.Printf("interference-free PAg:   %.4f\n", ifree.Rate())
	if conv.Rate() > 0 {
		fmt.Printf("allocation removed %.0f%% of the mispredictions the conventional index adds\n",
			100*(conv.Rate()-allocated.Rate())/conv.Rate())
	}
}

// Custom workload: build a program for the simulated machine directly
// with the program.Builder API — a two-phase loop nest with biased,
// periodic, and data-dependent branches — then run the full analysis on
// it. This is the route for studying control-flow shapes the built-in
// benchmark suite does not cover.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/isa"
	"repro/internal/profile"
	"repro/internal/program"
	"repro/internal/trace"
	"repro/internal/vm"
)

// buildPhase emits a function with nBranches branch sites: a loop-exit
// style counter branch, then alternating biased and random sites.
func buildPhase(b *program.Builder, nBranches int, ctrBase int32) program.Label {
	fn := b.NewLabel()
	b.Bind(fn)
	for j := 0; j < nBranches; j++ {
		skip := b.NewLabel()
		switch j % 3 {
		case 0: // periodic: taken 7 of 8
			addr := ctrBase + int32(j)
			b.Load(1, isa.RZero, addr)
			b.AddI(1, 1, 1)
			b.SltI(2, 1, 8)
			b.Store(1, isa.RZero, addr)
			b.Bne(2, isa.RZero, skip)
			b.Store(isa.RZero, isa.RZero, addr)
		case 1: // biased taken (~99.9%)
			b.Rand(1)
			b.ShrI(1, 1, 54)
			b.Bne(1, isa.RZero, skip)
			b.Nop()
		case 2: // data-dependent coin flip
			b.Rand(1)
			b.AndI(1, 1, 1)
			b.Bne(1, isa.RZero, skip)
			b.Nop()
		}
		b.Bind(skip)
		b.Nop()
	}
	b.Ret()
	return fn
}

func main() {
	b := program.NewBuilder("custom")
	b.ReserveMem(1024)

	// Two phases of 24 branches each; main alternates long runs of
	// phase 1 with short bursts of phase 2, creating two working sets.
	phase1 := b.NewLabel()
	phase2 := b.NewLabel()
	mainStart := b.NewLabel()
	b.Jump(mainStart)

	b.Bind(phase1)
	p1 := buildPhase(b, 24, 0)
	b.Bind(phase2)
	p2 := buildPhase(b, 24, 256)
	_ = p1
	_ = p2

	b.Bind(mainStart)
	// Three rounds of: dwell in phase 1 for 250 calls, then in phase 2
	// for 120. Each phase's branches interleave heavily among
	// themselves; across phases they interleave only at the six phase
	// transitions — below the analysis threshold, so two distinct
	// working sets emerge.
	b.LoadImm(21, 3)
	roundTop := b.Here()
	b.LoadImm(20, 250)
	p1Top := b.Here()
	b.Call(phase1)
	b.AddI(20, 20, -1)
	b.Bne(20, isa.RZero, p1Top)
	b.LoadImm(20, 120)
	p2Top := b.Here()
	b.Call(phase2)
	b.AddI(20, 20, -1)
	b.Bne(20, isa.RZero, p2Top)
	b.AddI(21, 21, -1)
	b.Bne(21, isa.RZero, roundTop)
	b.Halt()

	prog, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built %q: %d instructions, %d static conditional branches\n",
		prog.Name, len(prog.Code), prog.NumCondBranches())

	// Run with a recorder and an online profiler attached at once.
	rec := trace.NewRecorder(prog.Name, "demo")
	prof := profile.NewProfiler(prog.Name, "demo")
	stats, err := vm.Run(prog, vm.Config{
		DataSeed: 42,
		Sink:     vm.MultiSink{rec, prof},
	})
	if err != nil {
		log.Fatal(err)
	}
	prof.SetInstructions(stats.Instructions)
	tr := rec.Finish(stats.Instructions)
	fmt.Printf("executed %d instructions, %d branches (%.1f%% taken)\n",
		stats.Instructions, stats.CondBranches, 100*stats.TakenRate())

	analysis, err := repro.Analyze(prof.Profile(), repro.AnalysisConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nworking sets: %d (largest %d, avg %.1f static / %.1f dynamic)\n",
		analysis.NumSets(), analysis.MaxSetSize(), analysis.AvgStaticSize(), analysis.AvgDynamicSize())
	for i, ws := range analysis.Sets {
		fmt.Printf("  set %d: %d branches, %d executions\n", i+1, ws.Size(), ws.ExecWeight)
	}

	// A small allocated BHT suffices for two ~25-branch working sets.
	alloc, err := repro.Allocate(prof.Profile(), repro.AllocationConfig{TableSize: 64})
	if err != nil {
		log.Fatal(err)
	}
	allocated, err := repro.SimulatePAg(tr, 64, 1024, alloc)
	if err != nil {
		log.Fatal(err)
	}
	conv, err := repro.SimulatePAg(tr, 64, 1024, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nPAg-64 conventional: %.4f mispredict, allocated: %.4f (conflict cost %d)\n",
		conv.Rate(), allocated.Rate(), alloc.ConflictCost)
}

// Profile-guided allocation robustness (paper Section 5.2): a branch
// allocation built from one input set can mispredict badly when the
// program runs on a different input that exercises other code. The
// paper's remedy is cumulative profiling — merging conflict graphs from
// several inputs. This example quantifies all three cases on the ss
// benchmark (whose ss_a/ss_b rows differ most in the paper):
//
//  1. allocate from input A, evaluate on input A (self profile);
//  2. allocate from input A, evaluate on input B (mismatched profile);
//  3. allocate from merged A+B profiles, evaluate on B (cumulative).
package main

import (
	"fmt"
	"log"

	"repro"
)

const benchmark = "ss"

func main() {
	scale := 0.5

	trA, err := repro.Run(benchmark, repro.RunConfig{Input: repro.InputA, Scale: scale})
	if err != nil {
		log.Fatal(err)
	}
	trB, err := repro.Run(benchmark, repro.RunConfig{Input: repro.InputB, Scale: scale})
	if err != nil {
		log.Fatal(err)
	}

	// Profile each run. The bounded scan window (2x the nominal working
	// set) keeps profiling linear on this large benchmark; see
	// DESIGN.md on the approximation.
	spec, err := repro.Benchmark(benchmark)
	if err != nil {
		log.Fatal(err)
	}
	window := 2 * spec.WorkingSetSize()
	profA := repro.ProfileTrace(trA, window)
	profB := repro.ProfileTrace(trB, window)
	fmt.Printf("%s: input a profiles %d static branches, input b %d\n",
		benchmark, profA.NumBranches(), profB.NumBranches())

	merged, err := repro.MergeProfiles(profA, profB)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cumulative profile: %d static branches from %v\n\n",
		merged.NumBranches(), merged.InputSets)

	const table = 256
	allocA, err := repro.Allocate(profA, repro.AllocationConfig{TableSize: table})
	if err != nil {
		log.Fatal(err)
	}
	allocMerged, err := repro.Allocate(merged, repro.AllocationConfig{TableSize: table})
	if err != nil {
		log.Fatal(err)
	}

	rate := func(tr *repro.Trace, alloc *repro.Allocation) float64 {
		r, err := repro.SimulatePAg(tr, table, 4096, alloc)
		if err != nil {
			log.Fatal(err)
		}
		return r.Rate()
	}
	conv := func(tr *repro.Trace) float64 {
		r, err := repro.SimulatePAg(tr, table, 4096, nil)
		if err != nil {
			log.Fatal(err)
		}
		return r.Rate()
	}

	selfRate := rate(trA, allocA)
	crossRate := rate(trB, allocA)
	cumulRate := rate(trB, allocMerged)

	fmt.Printf("conventional PAg-%d on input a:              %.4f\n", table, conv(trA))
	fmt.Printf("alloc(profile a) on input a (self):           %.4f\n", selfRate)
	fmt.Println()
	fmt.Printf("conventional PAg-%d on input b:              %.4f\n", table, conv(trB))
	fmt.Printf("alloc(profile a) on input b (mismatched):     %.4f\n", crossRate)
	fmt.Printf("alloc(cumulative a+b) on input b:             %.4f\n", cumulRate)
	fmt.Println()
	switch {
	case cumulRate <= crossRate:
		fmt.Println("cumulative profiling recovered the mismatched profile's loss, as Section 5.2 argues.")
	default:
		fmt.Println("unexpected: cumulative profile did not help on this run.")
	}
}

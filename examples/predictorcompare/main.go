// Predictor comparison: replays one benchmark's branch stream through
// the whole predictor zoo — the paper's PAg configurations plus the
// classic baselines its related-work section discusses (bimodal, GAg,
// gshare, profile-guided static) — and prints a ranked accuracy table.
// It also demonstrates the Section 5.2 option of statically predicting
// highly biased branches and letting the dynamic predictor handle only
// the mixed ones.
package main

import (
	"fmt"
	"log"
	"sort"

	"repro"
	"repro/internal/classify"
	"repro/internal/predict"
)

const (
	benchmark = "chess"
	phtSize   = 4096
	bhtSize   = 1024
)

func main() {
	tr, err := repro.Run(benchmark, repro.RunConfig{Scale: 0.5})
	if err != nil {
		log.Fatal(err)
	}
	spec, err := repro.Benchmark(benchmark)
	if err != nil {
		log.Fatal(err)
	}
	prof := repro.ProfileTrace(tr, 2*spec.WorkingSetSize())
	fmt.Printf("%s: %d dynamic branches, %d static\n\n", benchmark, len(tr.Events), prof.NumBranches())

	alloc, err := repro.Allocate(prof, repro.AllocationConfig{TableSize: bhtSize})
	if err != nil {
		log.Fatal(err)
	}
	classAlloc, err := repro.Allocate(prof, repro.AllocationConfig{TableSize: bhtSize, UseClassification: true})
	if err != nil {
		log.Fatal(err)
	}

	// Biased-branch map for the hybrid static/dynamic predictor.
	cls := classify.Classify(prof, classify.Default())
	biased := make(map[uint64]bool)
	for id, c := range cls.Classes {
		switch c {
		case classify.BiasedTaken:
			biased[prof.PCs[id]] = true
		case classify.BiasedNotTaken:
			biased[prof.PCs[id]] = false
		}
	}

	// Profile-guided static directions.
	static := make(map[uint64]bool)
	for id := range prof.PCs {
		static[prof.PCs[id]] = prof.TakenRate(int32(id)) >= 0.5
	}

	mk := func(p predict.Predictor, err error) predict.Predictor {
		if err != nil {
			log.Fatal(err)
		}
		return p
	}
	hybridInner := mk(predict.NewPAg(predict.PCModIndexer{Entries: bhtSize}, phtSize))
	zoo := []predict.Predictor{
		mk(predict.NewPAg(predict.PCModIndexer{Entries: bhtSize}, phtSize)),
		mk(predict.NewPAg(predict.AllocIndexer{Map: alloc.Map}, phtSize)),
		mk(predict.NewPAg(predict.AllocIndexer{Map: classAlloc.Map}, phtSize)),
		mk(predict.NewPAg(predict.NewIdealIndexer(), phtSize)),
		predict.NewHybridBiasedStatic(biased, hybridInner),
		mk(predict.NewBimodal(2048)),
		mk(predict.NewGAg(phtSize)),
		mk(predict.NewGshare(phtSize)),
		predict.NewProfileStatic(static),
		predict.AlwaysTaken{},
	}

	sims := make([]*predict.Sim, len(zoo))
	for i, p := range zoo {
		sims[i] = predict.NewSim(p)
	}
	for _, e := range tr.Events {
		for _, s := range sims {
			s.Branch(e.PC, e.Taken, e.ICount)
		}
	}

	results := make([]predict.Result, len(sims))
	for i, s := range sims {
		results[i] = s.Result()
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Rate() < results[j].Rate() })

	fmt.Printf("%-45s %s\n", "predictor", "mispredict rate")
	for _, r := range results {
		fmt.Printf("%-45s %.4f\n", r.Name, r.Rate())
	}
}

package repro

// End-to-end integration tests over the public facade: each test walks a
// complete flow a library adopter would run, across module boundaries
// (workload → vm → trace → profile → core → predict).

import (
	"testing"
)

const itScale = 0.15

func TestEndToEndAnalysisPipeline(t *testing.T) {
	tr, err := Run("compress", RunConfig{Scale: itScale})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) == 0 {
		t.Fatal("empty trace")
	}

	prof := ProfileTrace(tr, 0)
	if prof.NumBranches() == 0 {
		t.Fatal("empty profile")
	}

	res, err := Analyze(prof, AnalysisConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumSets() == 0 {
		t.Fatal("no working sets found")
	}
	if res.AvgStaticSize() <= 1 {
		t.Fatalf("degenerate working sets: avg %v", res.AvgStaticSize())
	}
	// compress's nominal working set is a scene: ~40 branches.
	if res.MaxSetSize() < 10 || res.MaxSetSize() > 120 {
		t.Fatalf("max working set %d outside plausible range", res.MaxSetSize())
	}
}

func TestEndToEndAllocationBeatsConventional(t *testing.T) {
	tr, err := Run("li", RunConfig{Scale: itScale})
	if err != nil {
		t.Fatal(err)
	}
	prof := ProfileTrace(tr, 0)

	alloc, err := Allocate(prof, AllocationConfig{TableSize: 1024})
	if err != nil {
		t.Fatal(err)
	}

	conv, err := SimulatePAg(tr, 1024, 4096, nil)
	if err != nil {
		t.Fatal(err)
	}
	allocated, err := SimulatePAg(tr, 1024, 4096, alloc)
	if err != nil {
		t.Fatal(err)
	}
	ifree, err := SimulateInterferenceFree(tr, 4096)
	if err != nil {
		t.Fatal(err)
	}

	if allocated.Rate() > conv.Rate() {
		t.Fatalf("allocation (%.4f) worse than conventional (%.4f)", allocated.Rate(), conv.Rate())
	}
	if ifree.Rate() > conv.Rate() {
		t.Fatalf("interference-free (%.4f) worse than conventional (%.4f)", ifree.Rate(), conv.Rate())
	}
	// The paper's Figure 3 claim: allocated 1024 approximates
	// interference-free for a mid-sized program.
	if allocated.Rate() > ifree.Rate()+0.01 {
		t.Fatalf("allocated 1024 (%.4f) far from interference-free (%.4f)", allocated.Rate(), ifree.Rate())
	}
}

func TestEndToEndClassificationShrinksTables(t *testing.T) {
	prof, err := ProfileBenchmark("m88ksim", RunConfig{Scale: itScale})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Allocate(prof, AllocationConfig{TableSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	classified, err := Allocate(prof, AllocationConfig{TableSize: 64, UseClassification: true})
	if err != nil {
		t.Fatal(err)
	}
	if classified.ConflictCost > plain.ConflictCost {
		t.Fatalf("classification raised conflicts: %d vs %d", classified.ConflictCost, plain.ConflictCost)
	}
	if classified.Classification == nil {
		t.Fatal("classification result missing")
	}
}

func TestEndToEndCumulativeProfiles(t *testing.T) {
	// Section 5.2: profiles from two inputs merge into one cumulative
	// profile covering both runs' branch populations.
	pa, err := ProfileBenchmark("perl", RunConfig{Input: InputA, Scale: itScale})
	if err != nil {
		t.Fatal(err)
	}
	pb, err := ProfileBenchmark("perl", RunConfig{Input: InputB, Scale: itScale})
	if err != nil {
		t.Fatal(err)
	}
	merged, err := MergeProfiles(pa, pb)
	if err != nil {
		t.Fatal(err)
	}
	if merged.NumBranches() < pa.NumBranches() || merged.NumBranches() < pb.NumBranches() {
		t.Fatal("merged profile lost branches")
	}
	if merged.DynamicBranches() != pa.DynamicBranches()+pb.DynamicBranches() {
		t.Fatal("merged dynamic counts do not add up")
	}
	// A cumulative allocation must still work.
	if _, err := Allocate(merged, AllocationConfig{TableSize: 128}); err != nil {
		t.Fatal(err)
	}
}

func TestEndToEndBenchmarkRegistry(t *testing.T) {
	names := Benchmarks()
	if len(names) != 13 {
		t.Fatalf("suite size %d", len(names))
	}
	spec, err := Benchmark("gcc")
	if err != nil || spec.Name != "gcc" {
		t.Fatalf("Benchmark(gcc): %v %v", spec.Name, err)
	}
	if _, err := Benchmark("missing"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	if _, err := Run("missing", RunConfig{}); err == nil {
		t.Fatal("Run of unknown benchmark accepted")
	}
	if _, err := ProfileBenchmark("missing", RunConfig{}); err == nil {
		t.Fatal("ProfileBenchmark of unknown benchmark accepted")
	}
}

func TestEndToEndWindowedProfileKeepsShape(t *testing.T) {
	tr, err := Run("pgp", RunConfig{Scale: itScale})
	if err != nil {
		t.Fatal(err)
	}
	exact := ProfileTrace(tr, 0)
	spec, _ := Benchmark("pgp")
	windowed := ProfileTrace(tr, 2*spec.WorkingSetSize())

	exactRes, err := Analyze(exact, AnalysisConfig{})
	if err != nil {
		t.Fatal(err)
	}
	windowedRes, err := Analyze(windowed, AnalysisConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// The windowed profile must find essentially the same working-set
	// structure (the harness relies on this).
	if windowedRes.NumSets() == 0 {
		t.Fatal("windowed profile found nothing")
	}
	ratio := windowedRes.AvgStaticSize() / exactRes.AvgStaticSize()
	if ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("windowed avg size drifted: %v vs %v", windowedRes.AvgStaticSize(), exactRes.AvgStaticSize())
	}
}

func TestEndToEndSuiteFacade(t *testing.T) {
	s := NewSuite(SuiteConfig{Scale: 0.05}, nil)
	rows, err := s.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 13 {
		t.Fatalf("rows = %d", len(rows))
	}
}

package repro

// Benchmark harness: one testing.B target per table and figure of the
// paper's evaluation, as indexed in DESIGN.md. Each iteration
// regenerates the corresponding experiment end to end (workload
// execution, profiling, analysis/allocation/prediction) at a reduced
// scale chosen so a single iteration stays in benchmark-friendly
// territory; run cmd/tables -scale 1 for the full-scale numbers recorded
// in EXPERIMENTS.md. Custom metrics report the experiment's headline
// quantity alongside time/op. cmd/bench wraps these same experiments
// into the machine-readable BENCH_3.json regression report.

import (
	"io"
	"testing"

	"repro/internal/harness"
)

// benchScale keeps one full-suite iteration around a second or two.
const benchScale = 0.1

func newBenchSuite() *harness.Suite {
	return harness.NewSuite(harness.Config{Scale: benchScale})
}

// BenchmarkTable1 regenerates Table 1: benchmark execution, dynamic
// branch counts, and frequency-filter coverage.
func BenchmarkTable1(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := newBenchSuite()
		rows, err := s.Table1()
		if err != nil {
			b.Fatal(err)
		}
		var dyn uint64
		for _, r := range rows {
			dyn += r.TotalDynamic
		}
		b.ReportMetric(float64(dyn)/float64(b.Elapsed().Seconds())/1e6, "Mbranches/s")
	}
}

// BenchmarkTable2 regenerates Table 2: working-set extraction across the
// Table 2 benchmark set.
func BenchmarkTable2(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := newBenchSuite()
		rows, err := s.Table2()
		if err != nil {
			b.Fatal(err)
		}
		sets := 0
		for _, r := range rows {
			sets += r.NumSets
		}
		b.ReportMetric(float64(sets), "working-sets")
	}
}

// BenchmarkTable3 regenerates Table 3: the required-BHT-size search for
// plain branch allocation over all 14 benchmark/input rows.
func BenchmarkTable3(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := newBenchSuite()
		rows, err := s.Table3()
		if err != nil {
			b.Fatal(err)
		}
		total := 0
		for _, r := range rows {
			total += r.RequiredSize
		}
		b.ReportMetric(float64(total)/float64(len(rows)), "mean-required-entries")
	}
}

// BenchmarkTable4 regenerates Table 4: required BHT size with branch
// classification.
func BenchmarkTable4(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := newBenchSuite()
		rows, err := s.Table4()
		if err != nil {
			b.Fatal(err)
		}
		total := 0
		for _, r := range rows {
			total += r.RequiredSize
		}
		b.ReportMetric(float64(total)/float64(len(rows)), "mean-required-entries")
	}
}

// BenchmarkFigure3 regenerates Figure 3: misprediction-rate comparison
// of conventional, allocated (16/128/1024), and interference-free PAg.
func BenchmarkFigure3(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := newBenchSuite()
		f, err := s.Figure3()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*f.Average.Improvement(), "avg-improvement-%")
		b.ReportMetric(100*f.Average.Conventional, "conv-mispredict-%")
	}
}

// BenchmarkFigure4 regenerates Figure 4: the same comparison with branch
// classification — the paper's headline 16% improvement at 1024 entries.
func BenchmarkFigure4(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := newBenchSuite()
		f, err := s.Figure4()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*f.Average.Improvement(), "avg-improvement-%")
		b.ReportMetric(100*f.Average.Conventional, "conv-mispredict-%")
	}
}

// BenchmarkPipelineSingle measures the full single-benchmark pipeline
// (run → filter → profile) on the paper's most demanding program, gcc.
func BenchmarkPipelineSingle(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p, err := ProfileBenchmark("gcc", RunConfig{Scale: benchScale})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(p.NumBranches()), "static-branches")
	}
}

// benchmarkSuiteRunAll regenerates the complete evaluation — every
// table and both figures — under one harness configuration.
func benchmarkSuiteRunAll(b *testing.B, cfg harness.Config) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Scale = benchScale
		s := harness.NewSuite(cfg)
		if err := harness.RunAll(s, io.Discard, false); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(s.RetainedTraceBytes()), "trace-bytes")
	}
}

// BenchmarkSuiteSerialRecord is the pre-parallel pipeline: one worker,
// record-then-replay, full traces retained.
func BenchmarkSuiteSerialRecord(b *testing.B) {
	benchmarkSuiteRunAll(b, harness.Config{Workers: 1})
}

// BenchmarkSuiteParallelFused is the streaming pipeline at the default
// worker count: fused execution, no retained traces.
func BenchmarkSuiteParallelFused(b *testing.B) {
	benchmarkSuiteRunAll(b, harness.Config{Fused: true})
}
